package network

import (
	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// nackMagic marks a tail payload as an end-to-end retransmission request
// (E2E/FEC baselines): the tail word is nackMagic<<32 | packetID. A
// 32-bit magic makes accidental collision with a pseudo-random payload
// word practically impossible.
const nackMagic = uint64(0xE2E1F17A)

// isNACKRequest reports whether a tail word encodes a retransmission
// request, and for which packet.
func isNACKRequest(word uint64) (flit.PacketID, bool) {
	if word>>32 != nackMagic {
		return 0, false
	}
	return flit.PacketID(word & 0xffffffff), true
}

// retained is an E2E/FEC source-side packet copy awaiting implicit
// acknowledgement (timeout) or a retransmission request.
type retained struct {
	pkt      flit.Packet
	deadline uint64
}

// pe is one node's processing element: traffic source, packet injector,
// destination sink, and — under the E2E/FEC baselines — the end-to-end
// retransmission endpoint.
type pe struct {
	net *Network
	id  flit.NodeID
	src *traffic.Source
	tx  *link.Transmitter
	rx  *link.Receiver
	// bus is where this PE publishes trace events: the network's shared
	// bus under the serial kernels, a per-PE replay buffer under the
	// parallel kernel (see Network.flushTrace).
	bus *trace.Bus

	// Injection side. queue[qHead:] are the waiting packets, front first;
	// the head index avoids re-slicing the backing array away on every pop.
	queue   []flit.Packet
	qHead   int
	ctrl    [][]flit.Flit // pre-built priority packets (e2e NACKs) awaiting a VC
	vcFlits [][]flit.Flit // per VC, remaining flits of the packet being injected
	// vcBuf[v] is the reusable backing array vcFlits[v] windows into when
	// injecting a data packet (control packets keep their own slices).
	vcBuf [][]flit.Flit
	vcRR  int

	// nextExpected is the cycle the next Tick should see; a jump means the
	// kernel skipped this PE as quiescent and Tick must catch up first.
	nextExpected uint64

	// Sink side, per VC of the router->PE channel.
	sinkPID     []flit.PacketID
	sinkSrc     []flit.NodeID
	sinkBorn    []uint64
	sinkCorrupt []bool
	sinkLive    []bool
	sinkNextSeq []uint8

	// E2E/FEC source retention buffer.
	retention map[flit.PacketID]retained
}

func newPE(n *Network, id flit.NodeID, src *traffic.Source, tx *link.Transmitter, rx *link.Receiver, bus *trace.Bus) *pe {
	vcs := n.cfg.VCs
	return &pe{
		net:         n,
		id:          id,
		src:         src,
		tx:          tx,
		rx:          rx,
		bus:         bus,
		vcFlits:     make([][]flit.Flit, vcs),
		vcBuf:       make([][]flit.Flit, vcs),
		sinkPID:     make([]flit.PacketID, vcs),
		sinkSrc:     make([]flit.NodeID, vcs),
		sinkBorn:    make([]uint64, vcs),
		sinkCorrupt: make([]bool, vcs),
		sinkLive:    make([]bool, vcs),
		sinkNextSeq: make([]uint8, vcs),
		retention:   make(map[flit.PacketID]retained),
	}
}

// retentionSweepInterval is how often (cycles) the E2E/FEC retention
// buffer is swept for expired copies.
const retentionSweepInterval = 256

// srcLookahead caps how far ahead Quiescent searches for the traffic
// source's next injection slot. Past the cap the PE simply wakes for one
// idle tick and searches again, so very low rates stay bounded-cost.
const srcLookahead = 1 << 16

// Tick runs one cycle of PE behaviour.
func (p *pe) Tick(cycle uint64) {
	if cycle > p.nextExpected {
		p.catchUp(cycle - p.nextExpected)
	}
	p.nextExpected = cycle + 1
	p.tx.BeginCycle(cycle)
	p.tx.ExpireShifters(cycle)
	p.eject(cycle)
	p.generate(cycle)
	p.assign()
	p.inject(cycle)
	if p.usesRetention() && cycle%retentionSweepInterval == 0 {
		p.sweepRetention(cycle)
	}
}

// catchUp replays the effect of the idle cycles the kernel skipped while
// the PE was quiescent. The only per-cycle mutation an idle PE performs is
// the traffic source's sub-threshold accumulator step (sub-threshold by
// construction: Quiescent schedules the wake on the first crossing), so
// catching up is an exact replay of those additions. Once the global
// injection limit is reached the source is never ticked again — injected
// only grows — so if the limit was hit mid-sleep the accumulator is dead
// state and needs no replay.
func (p *pe) catchUp(gap uint64) {
	if lim := p.net.cfg.InjectLimit; lim != 0 && p.net.injected >= lim {
		return
	}
	p.src.Skip(gap)
}

// Quiescent implements sim.Quiescer: the PE is idle when its injection
// side has nothing queued, staged or in flight. Sink-side reassembly
// state needs no attention between arrivals — every arrival wakes the PE
// through the router->PE flit pipe. Occupied retransmission shifters do
// not keep the PE awake: the local PE->router channel is fault-free and
// the router never NACKs its Local input (no XY check, no recovery
// handshake on Local ports), so the only shifter duty is expiry, covered
// by a timed wake at the oldest entry's deadline. Two more duties are
// purely clock-driven and covered the same way: the traffic source's
// next injection slot and, while packet copies are retained, the next
// retention-sweep boundary.
func (p *pe) Quiescent(cycle uint64) (bool, uint64) {
	if p.qHead < len(p.queue) || len(p.ctrl) != 0 {
		return false, 0
	}
	for _, fs := range p.vcFlits {
		if len(fs) != 0 {
			return false, 0
		}
	}
	if p.tx.HasReplay() {
		return false, 0
	}
	var wake uint64
	if exp, ok := p.tx.EarliestExpiry(); ok {
		wake = exp
	}
	if lim := p.net.cfg.InjectLimit; (lim == 0 || p.net.injected < lim) && !p.dead() {
		if k, crosses := p.src.NextCrossing(srcLookahead); crosses || k > 0 {
			if w := cycle + k; wake == 0 || w < wake {
				wake = w
			}
		}
	}
	if p.usesRetention() && len(p.retention) > 0 {
		rw := (cycle/retentionSweepInterval + 1) * retentionSweepInterval
		if wake == 0 || rw < wake {
			wake = rw
		}
	}
	return true, wake
}

func (p *pe) usesRetention() bool {
	return p.net.cfg.Protection == link.E2E || p.net.cfg.Protection == link.FEC
}

// generate asks the traffic source for this cycle's injection.
func (p *pe) generate(cycle uint64) {
	if p.dead() {
		return
	}
	if lim := p.net.cfg.InjectLimit; lim != 0 && p.net.injected >= lim {
		return
	}
	dst, ok := p.src.Tick()
	if !ok {
		return
	}
	p.net.injected++
	pid := p.net.nextPID()
	if p.bus.Enabled() {
		p.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitInjected,
			Node: int32(p.id), Port: -1, VC: -1,
			PID: uint64(pid), Aux: uint64(dst),
		})
	}
	if m := p.net.mort; m != nil && !m.reachable(p.id, dst) {
		// Admission verdict: the destination is unreachable under the
		// current fault pattern, so the message gets its terminal
		// accounting now instead of wedging in the network.
		m.refuse(cycle, p, pid)
		return
	}
	p.queuePush(flit.Packet{
		ID:         pid,
		Src:        p.id,
		Dst:        dst,
		Size:       p.net.cfg.PacketSize,
		InjectedAt: cycle,
	})
}

// dead reports whether this PE's router has been killed by the mortality
// schedule: a dead core generates nothing.
func (p *pe) dead() bool {
	return p.net.mort != nil && p.net.mort.deadNode[p.id]
}

// queuePush appends a packet to the injection queue, compacting consumed
// head space first when the backing array is full.
func (p *pe) queuePush(pkt flit.Packet) {
	if p.qHead > 0 && len(p.queue) == cap(p.queue) {
		n := copy(p.queue, p.queue[p.qHead:])
		p.queue = p.queue[:n]
		p.qHead = 0
	}
	p.queue = append(p.queue, pkt)
}

// queuePop removes and returns the front packet; the backing array is
// recycled once the queue drains.
func (p *pe) queuePop() flit.Packet {
	pkt := p.queue[p.qHead]
	p.qHead++
	if p.qHead == len(p.queue) {
		p.queue = p.queue[:0]
		p.qHead = 0
	}
	return pkt
}

// queueFront stages a packet ahead of all waiting data traffic.
func (p *pe) queueFront(pkt flit.Packet) {
	if p.qHead > 0 {
		p.qHead--
		p.queue[p.qHead] = pkt
	} else {
		p.queue = append(p.queue, flit.Packet{})
		copy(p.queue[1:], p.queue)
		p.queue[0] = pkt
	}
}

// assign moves the next packet (priority control first, then the data
// queue) onto an idle injection VC.
func (p *pe) assign() {
	for v := range p.vcFlits {
		if len(p.vcFlits[v]) != 0 {
			continue
		}
		switch {
		case len(p.ctrl) > 0:
			p.vcFlits[v] = p.ctrl[0]
			p.ctrl = p.ctrl[1:]
		case p.qHead < len(p.queue):
			p.vcBuf[v] = p.queuePop().AppendFlits(p.vcBuf[v][:0])
			p.vcFlits[v] = p.vcBuf[v]
		default:
			return
		}
	}
}

// inject sends at most one flit into the router's local port, rotating
// across VCs for fairness.
func (p *pe) inject(cycle uint64) {
	n := len(p.vcFlits)
	for i := 0; i < n; i++ {
		v := (p.vcRR + i) % n
		fs := p.vcFlits[v]
		if len(fs) == 0 || p.tx.Credits(v) <= 0 || p.tx.HasReplay() {
			continue
		}
		f := fs[0]
		p.vcFlits[v] = fs[1:]
		p.tx.Send(f, v, cycle)
		_, isReq := isNACKRequest(f.Word)
		if f.Type == flit.Tail && p.usesRetention() && !isReq {
			p.retention[f.PID] = retained{
				pkt:      flit.Packet{ID: f.PID, Src: f.Src, Dst: f.Dst, Size: p.net.cfg.PacketSize, InjectedAt: f.InjectedAt},
				deadline: cycle + p.net.cfg.E2ETimeout,
			}
			if occ := len(p.retention); occ > p.net.e2eBufMax {
				p.net.e2eBufMax = occ
			}
		}
		p.vcRR = v + 1
		return
	}
}

// eject consumes the cycle's arrivals from the router and reassembles
// packets.
func (p *pe) eject(cycle uint64) {
	data, _ := p.rx.ReceiveAll(cycle)
	for _, f := range data {
		vc := int(f.VC)
		if vc >= len(p.sinkPID) {
			vc = 0
		}
		p.rx.ReturnCredit(vc)
		p.consume(cycle, vc, f)
	}
}

// emitDrop publishes a terminal packet-loss event at the PE, so
// conservation audits can account for every packet that will never be
// cleanly ejected.
func (p *pe) emitDrop(cycle uint64, vc int, pid flit.PacketID, reason uint64) {
	if p.bus.Enabled() {
		p.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitDropped,
			Node: int32(p.id), Port: -1, VC: int8(vc),
			PID: uint64(pid), Aux: reason,
		})
	}
}

// consume runs the destination-side integrity check and packet assembly
// for one flit.
func (p *pe) consume(cycle uint64, vc int, f flit.Flit) {
	switch f.Type {
	case flit.Head:
		if p.sinkLive[vc] {
			// Previous packet never closed: stranded wormhole debris
			// (possible only with unprotected logic faults).
			p.net.sinkAnomalies++
			p.emitDrop(cycle, vc, p.sinkPID[vc], trace.DropStray)
		}
		hdr := flit.DecodeHeader(f.Word)
		p.sinkLive[vc] = true
		p.sinkPID[vc] = hdr.PID
		p.sinkSrc[vc] = hdr.Src
		p.sinkBorn[vc] = f.InjectedAt
		p.sinkCorrupt[vc] = false
		p.sinkNextSeq[vc] = 1
		if hdr.Dst != p.id {
			// Misdelivered packet that escaped every check.
			p.sinkCorrupt[vc] = true
			p.net.sinkAnomalies++
		}
		return
	case flit.Body, flit.Tail:
		if !p.sinkLive[vc] {
			p.net.sinkAnomalies++
			p.emitDrop(cycle, vc, f.PID, trace.DropStray)
			return
		}
		// Sequence continuity: a gap means flits were lost in transit
		// (e.g. a retransmission NACK lost on an unprotected handshake
		// line, §4.6).
		if f.Seq != p.sinkNextSeq[vc] || f.PID != p.sinkPID[vc] {
			p.sinkCorrupt[vc] = true
		} else {
			p.sinkNextSeq[vc]++
		}
		if p.flitCorrupt(f) {
			p.sinkCorrupt[vc] = true
		}
		if f.Type != flit.Tail {
			return
		}
	default:
		return
	}

	// Tail: packet complete.
	p.sinkLive[vc] = false
	pid, src, born, corrupt := p.sinkPID[vc], p.sinkSrc[vc], p.sinkBorn[vc], p.sinkCorrupt[vc]

	if reqPID, isReq := isNACKRequest(f.Word); isReq && !corrupt && p.usesRetention() {
		// An end-to-end retransmission request addressed to us.
		p.handleRetransRequest(cycle, reqPID)
		return
	}
	if corrupt {
		// Terminal under HBH; under E2E/FEC the retransmission request may
		// still recover the packet (a later clean tail ejects it), but the
		// drop event keeps the PID accounted even if the request is lost.
		p.net.corruptedPackets++
		p.emitDrop(cycle, vc, pid, trace.DropCorrupt)
		if p.usesRetention() {
			p.sendRetransRequest(cycle, src, pid)
		}
		return
	}
	if p.bus.Enabled() {
		p.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitEjected,
			Node: int32(p.id), Port: -1, VC: int8(vc),
			PID: uint64(pid), Aux: uint64(src),
		})
	}
	p.net.recordDelivery(cycle, born, int(p.id))
}

// flitCorrupt applies the destination's end check per protection scheme.
func (p *pe) flitCorrupt(f flit.Flit) bool {
	_, _, out := ecc.Decode(f.Word, f.Check)
	p.net.events.ECCDecodes++
	switch p.net.cfg.Protection {
	case link.E2E:
		// Detection-only at the destination: any error condemns the packet.
		return out != ecc.OK
	default:
		// HBH/FEC corrected singles at the hops; only uncorrectable
		// residue condemns the packet.
		return out == ecc.Detected
	}
}

// sendRetransRequest injects the 2-flit end-to-end NACK packet back to
// the source, ahead of local traffic.
func (p *pe) sendRetransRequest(cycle uint64, src flit.NodeID, pid flit.PacketID) {
	req := flit.Packet{
		ID:         p.net.nextPID(),
		Src:        p.id,
		Dst:        src,
		Size:       2,
		InjectedAt: cycle,
	}
	fs := req.Flits()
	word := nackMagic<<32 | uint64(pid)&0xffffffff
	fs[1].Word = word
	fs[1].Check = ecc.Encode(word)
	p.net.e2eNACKs++
	// Control traffic jumps the queue: packet loss recovery cannot wait
	// behind a saturated source.
	p.queuePacketFront(fs)
}

// queuePacketFront stages pre-built flits ahead of all data traffic.
func (p *pe) queuePacketFront(fs []flit.Flit) {
	p.ctrl = append(p.ctrl, fs)
}

// handleRetransRequest re-injects a retained packet.
func (p *pe) handleRetransRequest(cycle uint64, pid flit.PacketID) {
	ret, ok := p.retention[pid]
	if !ok {
		// Evicted: the packet is unrecoverable.
		p.net.lostPackets++
		p.emitDrop(cycle, -1, pid, trace.DropEvicted)
		return
	}
	ret.deadline = cycle + p.net.cfg.E2ETimeout
	p.retention[pid] = ret
	p.net.e2eRetransmits++
	// Retransmission keeps the original injection timestamp so measured
	// latency includes the recovery round trip.
	p.queueFront(ret.pkt)
}

// eachResidentPID visits the id of every packet with state still inside
// this PE: queued or staged for injection, retained for end-to-end
// retransmission, held by the transmitter's replay machinery, or
// half-reassembled at the sink. Invariant-checker residency sweep.
func (p *pe) eachResidentPID(fn func(uint64)) {
	for _, pkt := range p.queue[p.qHead:] {
		fn(uint64(pkt.ID))
	}
	for _, fs := range p.ctrl {
		for _, f := range fs {
			fn(uint64(f.PID))
		}
	}
	for _, fs := range p.vcFlits {
		for _, f := range fs {
			fn(uint64(f.PID))
		}
	}
	for pid := range p.retention {
		fn(uint64(pid))
	}
	for vc, live := range p.sinkLive {
		if live {
			fn(uint64(p.sinkPID[vc]))
		}
	}
	p.tx.EachRetained(func(f flit.Flit) { fn(uint64(f.PID)) })
}

// sweepRetention drops copies whose implicit-ACK timeout expired.
func (p *pe) sweepRetention(cycle uint64) {
	for pid, ret := range p.retention {
		if cycle > ret.deadline {
			delete(p.retention, pid)
		}
	}
}

// The helpers below are the PE's hard-fault surface, called only by the
// network's reconfiguration controller between kernel steps.

// killInjection discards the flits staged for injection on VC vc (the
// remainder of a packet whose leading flits are being excised upstream of
// here — or everything, when the PE's router died).
func (p *pe) killInjection(vc int, fn func(flit.Flit)) {
	for _, f := range p.vcFlits[vc] {
		if fn != nil {
			fn(f)
		}
	}
	p.vcFlits[vc] = nil
}

// killSink abandons the packet half-reassembled on sink VC vc, returning
// its identity for undeliverable accounting.
func (p *pe) killSink(vc int) (flit.PacketID, flit.NodeID, bool) {
	if vc < 0 || vc >= len(p.sinkLive) || !p.sinkLive[vc] {
		return 0, 0, false
	}
	p.sinkLive[vc] = false
	return p.sinkPID[vc], p.sinkSrc[vc], true
}

// killQueued destroys every packet still waiting in the injection queue
// and every staged control packet (router death).
func (p *pe) killQueued(acc *killAcc) {
	for _, pkt := range p.queue[p.qHead:] {
		acc.addPID(pkt.ID, pkt.Src)
	}
	p.queue = p.queue[:0]
	p.qHead = 0
	for _, fs := range p.ctrl {
		for _, f := range fs {
			acc.observe(f)
		}
	}
	p.ctrl = nil
}

// killRetention drops every end-to-end retention copy: a dead source can
// never service a retransmission request anyway.
func (p *pe) killRetention() {
	for pid := range p.retention {
		delete(p.retention, pid)
	}
}

// evictRetention drops one retained copy (its packet was ruled
// undeliverable; a retransmission would head back into the dead region).
func (p *pe) evictRetention(pid flit.PacketID) {
	delete(p.retention, pid)
}

// dropUnreachableQueued re-validates the injection queue against the
// post-fault connectivity at a death boundary: queued messages whose
// destination became unreachable get their undeliverable verdict here
// instead of wedging in the network. Stale control packets to
// unreachable destinations are discarded silently (not messages).
func (p *pe) dropUnreachableQueued(cycle uint64) {
	m := p.net.mort
	kept := p.queue[:p.qHead]
	for _, pkt := range p.queue[p.qHead:] {
		if m.reachable(p.id, pkt.Dst) {
			kept = append(kept, pkt)
			continue
		}
		if !m.killed[pkt.ID] {
			m.killed[pkt.ID] = true
			m.undeliverable++
			p.net.lastEject = cycle
			p.emitDrop(cycle, -1, pkt.ID, trace.DropUnreachable)
		}
	}
	p.queue = kept
	keptCtrl := p.ctrl[:0]
	for _, fs := range p.ctrl {
		if len(fs) > 0 && !m.reachable(p.id, fs[0].Dst) {
			continue
		}
		keptCtrl = append(keptCtrl, fs)
	}
	p.ctrl = keptCtrl
}
