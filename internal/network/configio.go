package network

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the configuration, indented, for experiment
// management. Enum fields serialise as their numeric codes; the zero
// value of optional enums means "default".
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("network: encoding config: %w", err)
	}
	return nil
}

// ReadConfig parses a configuration written by WriteJSON. Fields absent
// from the document keep NewConfig defaults, so a partial document is a
// valid override file. The result is validated lazily by New, like any
// hand-built Config.
func ReadConfig(r io.Reader) (Config, error) {
	cfg := NewConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("network: decoding config: %w", err)
	}
	return cfg, nil
}
