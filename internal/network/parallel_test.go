package network

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
)

// captureSink records every trace event in emission order, so two runs
// can be compared event-for-event — a much stronger check than Results
// equality alone, because it pins down the cycle stamp and the ordering
// of every boundary crossing, not just the aggregate outcome.
type captureSink struct{ events []trace.Event }

func (c *captureSink) Emit(e trace.Event) { c.events = append(c.events, e) }

// runCapture executes cfg under the given scheduler with a trace capture
// attached and returns the comparable results plus the ordered stream.
func runCapture(t *testing.T, cfg Config, k kernel.Kind) (Results, []trace.Event) {
	t.Helper()
	cfg.Kernel = k
	sink := &captureSink{}
	cfg.TraceSink = sink
	res := comparable(New(cfg).Run())
	return res, sink.events
}

// vertical reports whether the event is attributed to a row-crossing
// (North/South) physical channel — under KernelWorkers = Height every
// row is its own band, so every vertical link is a partition boundary.
func vertical(e trace.Event) bool {
	return e.Port == int8(topology.North) || e.Port == int8(topology.South)
}

// TestParallelBoundaryHandoff is the partition-boundary white-box test.
// With KernelWorkers = Height each mesh row becomes its own band and
// every vertical link a cross-region boundary: its flits, credits and
// NACKs all travel through the staged handoff slots instead of
// same-worker memory. Under a heavy link error rate the NACK-window
// machinery fires constantly across those boundaries — receivers open
// post-NACK drop windows, transmitters replay from their shifters — and
// the test demands a seed where a boundary retransmission lands in the
// same cycle as a boundary drop-window discard: a retransmitted flit
// crossing the region edge exactly while the downstream receiver's
// NACK window is still swallowing the stale copies it covers. For
// every seed the parallel stream must match the naive oracle's
// event-for-event, cycle stamps included.
func TestParallelBoundaryHandoff(t *testing.T) {
	t.Parallel()
	sameCycleCoincidence := false
	for seed := uint64(1); seed <= 8; seed++ {
		// Dimension-ordered XY keeps traffic crossing rows on the vertical
		// links, and hop-by-hop protection is the mode whose NACK window
		// the test is aimed at.
		cfg := diffConfig(routing.XY, link.HBH, 2e-2, seed)
		cfg.TotalMessages = 400
		want, wantEvents := runCapture(t, cfg, kernel.Naive)

		c := cfg
		c.KernelWorkers = cfg.Height // one band per row
		got, gotEvents := runCapture(t, c, kernel.Parallel)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: parallel results diverged from naive:\nnaive:    %+v\nparallel: %+v", seed, want, got)
		}
		if !reflect.DeepEqual(wantEvents, gotEvents) {
			i := 0
			for i < len(wantEvents) && i < len(gotEvents) && wantEvents[i] == gotEvents[i] {
				i++
			}
			t.Fatalf("seed %d: trace streams diverged at event %d of %d/%d:\nnaive:    %+v\nparallel: %+v",
				seed, i, len(wantEvents), len(gotEvents), at(wantEvents, i), at(gotEvents, i))
		}

		// Scan the (now proven identical) stream for the coincidence.
		windowDropCycles := map[uint64]bool{}
		for _, e := range wantEvents {
			if e.Kind == trace.FlitDropped && e.Aux == trace.DropWindow && vertical(e) {
				windowDropCycles[e.Cycle] = true
			}
		}
		for _, e := range wantEvents {
			if e.Kind == trace.Retransmit && vertical(e) && windowDropCycles[e.Cycle] {
				sameCycleCoincidence = true
			}
		}
	}
	if !sameCycleCoincidence {
		t.Fatal("no seed produced a boundary retransmit in the same cycle as a boundary drop-window discard — raise the error rate or widen the seed range")
	}
}

// at formats stream element i, tolerating an index past either end.
func at(events []trace.Event, i int) any {
	if i >= len(events) {
		return "(stream ended)"
	}
	return events[i]
}

// TestParallelSeedReplay is the randomized replay property: for random
// operating points, running the parallel kernel twice with the same
// seed must reproduce byte-identical results and trace streams — the
// goroutine schedule may differ arbitrarily between the two runs, and
// none of that nondeterminism may leak into observables. Each point is
// also checked against the naive oracle, and replayed under a different
// worker count, which moves every band boundary.
func TestParallelSeedReplay(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(0xf17b0a7))
	for i := 0; i < 5; i++ {
		cfg := NewConfig()
		cfg.Width = 3 + rng.Intn(3)
		cfg.Height = 3 + rng.Intn(3)
		cfg.InjectionRate = 0.1 + 0.2*rng.Float64()
		cfg.Faults.Link = []float64{0, 1e-3, 1e-2}[rng.Intn(3)]
		cfg.Seed = rng.Uint64() | 1
		cfg.WarmupMessages = 50
		cfg.TotalMessages = 500
		cfg.MaxCycles = 300_000
		cfg.TracePIDs = []uint64{1, 2, 3, 5, 8}
		cfg.KernelWorkers = 1 + rng.Intn(4)

		oracle, oracleEvents := runCapture(t, cfg, kernel.Naive)
		first, firstEvents := runCapture(t, cfg, kernel.Parallel)
		replay, replayEvents := runCapture(t, cfg, kernel.Parallel)
		if !reflect.DeepEqual(first, replay) || !reflect.DeepEqual(firstEvents, replayEvents) {
			t.Fatalf("point %d (%dx%d w=%d seed=%d): parallel replay diverged from itself",
				i, cfg.Width, cfg.Height, cfg.KernelWorkers, cfg.Seed)
		}
		if !reflect.DeepEqual(oracle, first) || !reflect.DeepEqual(oracleEvents, firstEvents) {
			t.Fatalf("point %d (%dx%d w=%d seed=%d): parallel diverged from naive",
				i, cfg.Width, cfg.Height, cfg.KernelWorkers, cfg.Seed)
		}
		c := cfg
		c.KernelWorkers = cfg.KernelWorkers%4 + 1
		moved, movedEvents := runCapture(t, c, kernel.Parallel)
		if !reflect.DeepEqual(oracle, moved) || !reflect.DeepEqual(oracleEvents, movedEvents) {
			t.Fatalf("point %d (%dx%d seed=%d): parallel diverged after moving bands from %d to %d workers",
				i, cfg.Width, cfg.Height, cfg.Seed, cfg.KernelWorkers, c.KernelWorkers)
		}
	}
}

// TestParallelSpeedup asserts the parallel kernel actually outruns the
// serial event kernel on its home workload — a 16x16 mesh at the 0.25
// operating point, where each band carries 64+ actors per cycle. The
// threshold is deliberately below the ~2x recorded in BENCH_kernel.json
// so scheduler noise on shared CI runners does not flake the build; a
// real ordering regression (parallel slower than serial) still fails.
// On fewer than 4 CPUs the workers timeshare cores and no speedup is
// physically available, so the assertion is skipped, not weakened.
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup measurement, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	cfg := NewConfig()
	cfg.Width, cfg.Height = 16, 16
	cfg.InjectionRate = 0.25
	cfg.WarmupMessages = 1 << 62
	cfg.TotalMessages = 1 << 62
	cfg.MaxCycles = 1 << 62

	const cycles = 4000
	wall := func(k kernel.Kind, workers int) time.Duration {
		c := cfg
		c.Kernel = k
		c.KernelWorkers = workers
		n := New(c)
		defer n.kernel.StopWorkers()
		for i := 0; i < 2000; i++ { // steady state before timing
			n.kernel.Step()
		}
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for i := 0; i < cycles; i++ {
				n.kernel.Step()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	event := wall(kernel.Event, 0)
	parallel := wall(kernel.Parallel, 0)
	speedup := float64(event) / float64(parallel)
	t.Logf("event %v, parallel %v: %.2fx over %d cycles on %d CPUs",
		event, parallel, speedup, cycles, runtime.NumCPU())
	if speedup < 1.3 {
		t.Errorf("parallel kernel only %.2fx vs event on %d CPUs (want >= 1.3x)", speedup, runtime.NumCPU())
	}
}
