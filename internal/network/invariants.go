package network

import (
	"fmt"

	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/invariant"
	"ftnoc/internal/link"
	"ftnoc/internal/topology"
)

// creditLoop is one credit-conservation audit unit: a transmitter, its
// channel, and the downstream buffer its credits meter. The flow-control
// law — at every cycle boundary, for every VC —
//
//	credits + credits-in-flight + data-in-flight + downstream-buffered == BufDepth
//
// holds because every send pairs a credit decrement with a wire copy,
// and every arrival either occupies a credited buffer slot or returns
// its credit (drop windows, NACK drops, force-drops, parking, ejection).
// Replay/shifter copies and recovery-parked flits hold no credits.
type creditLoop struct {
	tx   *link.Transmitter
	rx   *link.Receiver // receiving end (tests reach its fault hooks here)
	ch   *link.Channel
	node int32 // transmitter's node, for violation context
	port int8  // transmitter's port
	// Downstream side: a router input VC buffer, or a PE (which consumes
	// arrivals and returns credits within the same tick, so it holds no
	// buffer term).
	downNode int
	downPort topology.Port
	toPE     bool
}

// watchLink registers a channel with the invariant machinery: its credit
// loop joins the per-cycle audit, and the receiver gets the
// ECC-consistency verifier (every corrected codeword must re-decode
// clean — a correction that does not is a miscorrection). Called from
// New only when a checker is attached.
func (n *Network) watchLink(tx *link.Transmitter, rx *link.Receiver, ch *link.Channel,
	node int32, port int8, downNode int, downPort topology.Port, toPE bool) {
	n.loops = append(n.loops, creditLoop{
		tx: tx, rx: rx, ch: ch, node: node, port: port,
		downNode: downNode, downPort: downPort, toPE: toPE,
	})
	rxNode, rxPort := int32(downNode), int8(downPort)
	inv := n.inv
	rx.SetVerifier(func(cycle uint64, vc int, pid uint64, word uint64, check uint8) {
		if _, _, out := ecc.Decode(word, check); out != ecc.OK {
			inv.Report(invariant.Violation{
				Check: "ecc", Cycle: cycle, Node: rxNode, Port: rxPort, VC: int8(vc), PID: pid,
				Msg: fmt.Sprintf("corrected codeword %#x/%#x does not re-decode clean (outcome %d)", word, check, out),
			})
		}
	})
}

// checkState is the per-cycle structural audit, run at the cycle
// boundary after kernel.Step (clock = the next cycle to tick, when all
// latches have settled): credit conservation on every loop, each
// router's internal consistency (VA bindings, retransmission-buffer
// ages, probe-memory bounds), quiescence safety — a kernel-asleep actor
// must still satisfy its own Quiescent predicate, proving idle-skipping
// never slept a live component — and recovery-episode liveness.
func (n *Network) checkState(clock uint64) {
	inv := n.inv
	for _, lp := range n.loops {
		for vc := 0; vc < n.cfg.VCs; vc++ {
			have := lp.tx.Credits(vc) + lp.ch.InFlightCredits(vc) + lp.ch.InFlightData(vc)
			if !lp.toPE {
				have += n.routers[lp.downNode].VCBufLen(lp.downPort, vc)
			}
			if have != n.cfg.BufDepth {
				inv.Report(invariant.Violation{
					Check: "credits", Cycle: clock, Node: lp.node, Port: lp.port, VC: int8(vc),
					Msg: fmt.Sprintf("credits %d + credit-wire %d + data-wire %d + buffered %d != depth %d",
						lp.tx.Credits(vc), lp.ch.InFlightCredits(vc), lp.ch.InFlightData(vc),
						have-lp.tx.Credits(vc)-lp.ch.InFlightCredits(vc)-lp.ch.InFlightData(vc), n.cfg.BufDepth),
				})
			}
		}
	}
	for i, r := range n.routers {
		if s := r.AuditInvariants(clock); s != "" {
			inv.Report(invariant.Violation{
				Check: "router-state", Cycle: clock, Node: int32(i), Port: -1, VC: -1, Msg: s,
			})
		}
		if n.kernel.Asleep(n.routerH[i]) {
			if ok, _ := r.Quiescent(clock); !ok {
				inv.Report(invariant.Violation{
					Check: "quiescence", Cycle: clock, Node: int32(i), Port: -1, VC: -1,
					Msg: "kernel holds router asleep but its Quiescent predicate is false",
				})
			}
		}
	}
	for i, p := range n.pes {
		if n.kernel.Asleep(n.peH[i]) {
			if ok, _ := p.Quiescent(clock); !ok {
				inv.Report(invariant.Violation{
					Check: "quiescence", Cycle: clock, Node: int32(i), Port: -1, VC: -1,
					Msg: "kernel holds PE asleep but its Quiescent predicate is false",
				})
			}
		}
	}
	inv.CheckEpisodes(clock)
}

// residentPIDs sweeps every place a packet's flits can physically be —
// router VC buffers and parked queues, transmitter replay/shifters,
// channel wires, PE injection queues, staged control packets, retention
// copies and half-reassembled sinks — so Finalize can tell a stranded
// packet from a vanished one.
func (n *Network) residentPIDs() map[uint64]bool {
	res := make(map[uint64]bool)
	add := func(f flit.Flit) { res[uint64(f.PID)] = true }
	for _, r := range n.routers {
		r.EachResidentFlit(add)
		r.EachRetainedFlit(add)
	}
	for _, lp := range n.loops {
		lp.ch.EachDataFlit(add)
		lp.tx.EachRetained(add)
	}
	for _, p := range n.pes {
		p.eachResidentPID(func(pid uint64) { res[pid] = true })
	}
	return res
}
