package network

import (
	"math"
	"sort"

	"ftnoc/internal/faultmap"
	"ftnoc/internal/flit"
	"ftnoc/internal/invariant"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/sim"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
)

// This file is the hard-fault regime: the reconfiguration controller
// that applies the mortality schedule, excises every wormhole severed by
// a death, disseminates per-router fault maps through the network, and
// accounts messages that can no longer be delivered. Everything here
// runs serially between kernel steps — every kernel's Step advances
// exactly one cycle, so death boundaries land identically under all
// four kernels.

const (
	// hazardSeedSalt decorrelates the hazard process from every other
	// consumer of Config.Seed.
	hazardSeedSalt = 0x6d6f7274616c6974

	// wedgeSweepInterval is how often (cycles) the controller scans for
	// worms waiting on an allocation that can never come (their legal
	// candidate set is empty under the post-fault topology) and excises
	// them. Only runs once something has died.
	wedgeSweepInterval = 64
)

// mortDirs is the deterministic direction order of every controller walk.
var mortDirs = [...]topology.Port{topology.North, topology.East, topology.South, topology.West}

// deathEvent is one entry of the mortality timeline.
type deathEvent struct {
	cycle    uint64
	isRouter bool
	node     flit.NodeID
	dir      topology.Port // link deaths only
}

// mortalityState is the per-run hard-fault state.
type mortalityState struct {
	n  *Network
	fa *routing.FaultAdaptiveFunc // nil under deterministic routing

	// maps[i] is router i's local view of the fault pattern. Updated at
	// death boundaries (endpoints only) and spread one hop per cycle by
	// gossip over surviving links.
	maps     []*faultmap.Map
	frontier []flit.NodeID

	timeline []deathEvent
	next     int

	// comp is the connected-component label of each node over live
	// links; deadNode marks killed routers.
	comp     []int32
	deadNode []bool

	// killed dedupes packet verdicts: a packet destroyed by a boundary
	// kill, refused at admission, or excised by a wedge sweep is counted
	// undeliverable exactly once.
	killed        map[flit.PacketID]bool
	undeliverable uint64

	deadLinks   int
	deadRouters int
	anyDeath    bool

	// Post-fault throughput window: deliveries after the last applied
	// death.
	lastDeathCycle       uint64
	deliveredAtLastDeath uint64
}

// newMortalityState builds the controller: per-router fault maps seeded
// with the boot-time hard faults (BIST results are global knowledge; only
// runtime deaths need dissemination) and the death timeline, with hazard
// deaths pre-sampled from the run seed so the schedule is reproducible.
func newMortalityState(n *Network, route routing.Func) *mortalityState {
	nodes := n.topo.Nodes()
	m := &mortalityState{
		n:        n,
		killed:   make(map[flit.PacketID]bool),
		deadNode: make([]bool, nodes),
		maps:     make([]*faultmap.Map, nodes),
	}
	m.fa, _ = route.(*routing.FaultAdaptiveFunc)
	for i := range m.maps {
		m.maps[i] = faultmap.New(nodes)
	}
	for _, hf := range n.cfg.HardFaults {
		for _, mp := range m.maps {
			mp.MarkLinkDead(hf.From, hf.Dir)
		}
	}
	m.buildTimeline()
	m.recomputeComponents()
	return m
}

// buildTimeline merges scheduled link deaths, router deaths and sampled
// hazard deaths into one cycle-ordered timeline. Within a cycle links die
// before routers, each class in its canonical schedule order.
func (m *mortalityState) buildTimeline() {
	links, routers := m.n.cfg.Faults.Mortality.Sorted()
	for _, l := range links {
		m.timeline = append(m.timeline, deathEvent{cycle: l.Cycle, node: l.From, dir: l.Dir})
	}
	m.sampleHazard()
	sort.SliceStable(m.timeline, func(i, j int) bool {
		a, b := m.timeline[i], m.timeline[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.dir < b.dir
	})
	for _, r := range routers {
		m.timeline = append(m.timeline, deathEvent{cycle: r.Cycle, isRouter: true, node: r.Node})
	}
	sort.SliceStable(m.timeline, func(i, j int) bool {
		return m.timeline[i].cycle < m.timeline[j].cycle
	})
}

// sampleHazard pre-draws the memoryless link-death process: geometric
// gaps between deaths via inverse-transform sampling, victims uniform
// over the physical links. Duplicates are skipped at apply time.
func (m *mortalityState) sampleHazard() {
	mort := m.n.cfg.Faults.Mortality
	if mort.HazardRate <= 0 {
		return
	}
	stop := mort.HazardStop
	if stop == 0 || stop > m.n.cfg.MaxCycles {
		stop = m.n.cfg.MaxCycles
	}
	// One canonical representative per physical link: its East/South
	// directed half (every mesh/torus link has exactly one).
	var reps []topology.LinkID
	for _, l := range m.n.topo.Links() {
		if l.Dir == topology.East || l.Dir == topology.South {
			reps = append(reps, l)
		}
	}
	if len(reps) == 0 {
		return
	}
	rng := sim.NewRNG(m.n.cfg.Seed ^ hazardSeedSalt)
	logq := math.Log1p(-mort.HazardRate)
	c := mort.HazardStart
	for {
		gap := uint64(math.Floor(math.Log1p(-rng.Float64()) / logq))
		if c > stop-1-min64(gap, stop-1) { // c+gap >= stop, overflow-safe
			break
		}
		c += gap
		v := reps[rng.Intn(len(reps))]
		m.timeline = append(m.timeline, deathEvent{cycle: c, node: v.From, dir: v.Dir})
		c++
		if c >= stop {
			break
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// preStep runs the controller for cycle c, before the kernel executes it:
// apply due deaths, reconfigure routing, gossip fault maps, and
// periodically excise worms that can no longer make progress.
func (m *mortalityState) preStep(c uint64) {
	boundary := false
	for m.next < len(m.timeline) && m.timeline[m.next].cycle <= c {
		ev := m.timeline[m.next]
		m.next++
		if m.applyDeath(c, ev) {
			boundary = true
		}
	}
	if boundary {
		m.reconfigure(c)
	}
	m.gossip(c)
	if (m.anyDeath || len(m.n.cfg.HardFaults) > 0) && c%wedgeSweepInterval == 0 {
		m.sweepStuckWorms(c)
	}
}

func (m *mortalityState) applyDeath(c uint64, ev deathEvent) bool {
	if ev.isRouter {
		return m.killRouter(c, ev.node)
	}
	return m.killLinkPair(c, ev.node, ev.dir)
}

// reconfigure rebuilds the routing epoch after a boundary: new up*/down*
// orientation, flushed route memos, and rewritten candidate sets for
// worms still waiting on the old epoch. Deterministic routing has nothing
// to rebuild — its tables are topology-blind. Connectivity components
// and the PE injection queues are refreshed under every routing function.
func (m *mortalityState) reconfigure(c uint64) {
	if m.fa != nil {
		m.fa.Rebuild()
		for _, r := range m.n.routers {
			r.FlushRouteCache()
			r.RefreshWaitingRoutes()
		}
	}
	m.recomputeComponents()
	for _, p := range m.n.pes {
		if !m.deadNode[p.id] {
			p.dropUnreachableQueued(c)
		}
	}
}

// recomputeComponents labels connected components over live links.
func (m *mortalityState) recomputeComponents() {
	nodes := m.n.topo.Nodes()
	if m.comp == nil {
		m.comp = make([]int32, nodes)
	}
	for i := range m.comp {
		m.comp[i] = -1
	}
	var q []flit.NodeID
	next := int32(0)
	for s := 0; s < nodes; s++ {
		if m.comp[s] >= 0 {
			continue
		}
		m.comp[s] = next
		q = append(q[:0], flit.NodeID(s))
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, d := range mortDirs {
				if !m.n.topo.LinkUp(v, d) {
					continue
				}
				nb, _ := m.n.topo.Neighbor(v, d)
				if m.comp[nb] < 0 {
					m.comp[nb] = next
					q = append(q, nb)
				}
			}
		}
		next++
	}
}

// reachable reports whether a message from src can still reach dst. The
// fault-adaptive tables are authoritative when present (they encode the
// same component structure); otherwise graph connectivity is used — under
// deterministic routing a connected pair may still be undeliverable (the
// fixed path crosses a dead link), which the wedge sweep converts into an
// undeliverable verdict when the worm jams.
func (m *mortalityState) reachable(src, dst flit.NodeID) bool {
	if m.deadNode[src] || m.deadNode[dst] {
		return false
	}
	if m.fa != nil {
		return m.fa.Reachable(src, dst)
	}
	return m.comp[src] == m.comp[dst]
}

// reachablePairFraction is the fraction of ordered node pairs that can
// still communicate — the paper-style degradation metric.
func (m *mortalityState) reachablePairFraction() float64 {
	nodes := len(m.comp)
	if nodes <= 1 {
		return 1
	}
	sizes := make(map[int32]int)
	for i, cp := range m.comp {
		if m.deadNode[i] {
			continue
		}
		sizes[cp]++
	}
	pairs := 0
	for _, s := range sizes {
		pairs += s * (s - 1)
	}
	return float64(pairs) / float64(nodes*(nodes-1))
}

// postFaultThroughput is the delivered flits/node/cycle over the window
// after the last applied death (whole run when nothing died).
func (m *mortalityState) postFaultThroughput(delivered, cycles uint64) float64 {
	window := cycles - m.lastDeathCycle
	if window == 0 {
		return 0
	}
	msgs := delivered - m.deliveredAtLastDeath
	return float64(msgs*uint64(m.n.cfg.PacketSize)) / float64(window) / float64(m.n.topo.Nodes())
}

func (m *mortalityState) noteDeath(c uint64) {
	m.anyDeath = true
	m.lastDeathCycle = c
	m.deliveredAtLastDeath = m.n.delivered
}

func (m *mortalityState) emit(e trace.Event) {
	if m.n.bus.Enabled() {
		m.n.bus.Emit(e)
	}
}

func (m *mortalityState) frontierAdd(v flit.NodeID) {
	m.frontier = append(m.frontier, v)
}

// gossip floods fault-map updates one hop per cycle over surviving links:
// every router whose map changed last round offers it to each live
// neighbor; neighbors that learn something join the next round's
// frontier. Dissemination thus rides the network's own connectivity — a
// partitioned region never hears about remote deaths, which is exactly
// the physical reality.
func (m *mortalityState) gossip(c uint64) {
	if len(m.frontier) == 0 {
		return
	}
	cur := m.frontier
	m.frontier = nil
	sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
	var last flit.NodeID = ^flit.NodeID(0)
	for _, v := range cur {
		if v == last {
			continue
		}
		last = v
		if m.deadNode[v] {
			continue
		}
		for _, d := range mortDirs {
			if !m.n.topo.LinkUp(v, d) {
				continue
			}
			nb, _ := m.n.topo.Neighbor(v, d)
			if m.deadNode[nb] {
				continue
			}
			if m.maps[nb].MergeFrom(m.maps[v]) {
				m.emit(trace.Event{
					Cycle: c, Kind: trace.FaultMapUpdate,
					Node: int32(nb), Port: -1, VC: -1,
					Aux: m.maps[nb].Version(), Aux2: uint64(m.maps[nb].DeadLinks()),
				})
				m.frontierAdd(nb)
			}
		}
	}
}

// killAcc accumulates the packets touched by one boundary's kill walks.
type killInfo struct {
	src  flit.NodeID
	ctrl bool
}

type killAcc struct {
	m     *mortalityState
	flits int
	pids  map[flit.PacketID]killInfo
}

func (m *mortalityState) newAcc() *killAcc {
	return &killAcc{m: m, pids: make(map[flit.PacketID]killInfo)}
}

// observe records one destroyed flit. End-to-end retransmission requests
// are tagged as control traffic: they carry allocated PIDs but are not
// messages, so they must not count toward the undeliverable tally.
func (a *killAcc) observe(f flit.Flit) {
	a.flits++
	if !f.IsData() {
		return
	}
	info := a.pids[f.PID]
	info.src = f.Src
	if f.Type == flit.Tail && a.ctrlTail(f) {
		info.ctrl = true
	}
	a.pids[f.PID] = info
}

func (a *killAcc) ctrlTail(f flit.Flit) bool {
	if p := a.m.n.cfg.Protection; p != link.E2E && p != link.FEC {
		return false
	}
	_, isReq := isNACKRequest(f.Word)
	return isReq
}

// addPID records a packet known only by identity (queued at a PE, or
// half-reassembled at a sink) rather than through a destroyed flit.
func (a *killAcc) addPID(pid flit.PacketID, src flit.NodeID) {
	info := a.pids[pid]
	info.src = src
	a.pids[pid] = info
}

// account issues one terminal verdict per destroyed packet: mark it
// killed, evict the source's retention copy (a retransmission would head
// straight back into the dead region), publish the terminal drop for the
// conservation ledger, and bump the undeliverable tally.
func (m *mortalityState) account(c uint64, a *killAcc, reason uint64) {
	if len(a.pids) == 0 {
		return
	}
	ids := make([]flit.PacketID, 0, len(a.pids))
	for pid := range a.pids {
		ids = append(ids, pid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, pid := range ids {
		info := a.pids[pid]
		if m.killed[pid] {
			continue
		}
		m.killed[pid] = true
		if int(info.src) < len(m.n.pes) {
			m.n.pes[info.src].evictRetention(pid)
		}
		m.emit(trace.Event{
			Cycle: c, Kind: trace.FlitDropped,
			Node: int32(info.src), Port: -1, VC: -1,
			PID: uint64(pid), Aux: reason,
		})
		if info.ctrl {
			continue
		}
		m.undeliverable++
		m.n.lastEject = c // a terminal verdict is progress for stall detection
	}
}

// refuse is the admission-time verdict: a freshly generated message whose
// destination is unreachable is counted undeliverable immediately instead
// of being injected to wedge in the network.
func (m *mortalityState) refuse(cycle uint64, p *pe, pid flit.PacketID) {
	m.killed[pid] = true
	m.undeliverable++
	m.n.lastEject = cycle
	p.emitDrop(cycle, -1, pid, trace.DropUnreachable)
}

func (m *mortalityState) chanOf(from flit.NodeID, d topology.Port) *link.Channel {
	return m.n.chanAt[int(from)*int(topology.NumPorts)+int(d)]
}

// killLinkPair kills the physical link (from, dir) in both directions.
// Returns false if it was already fully dead.
func (m *mortalityState) killLinkPair(c uint64, from flit.NodeID, dir topology.Port) bool {
	to, ok := m.n.topo.Neighbor(from, dir)
	if !ok {
		return false
	}
	fwd := m.n.topo.LinkUp(from, dir)
	rev := m.n.topo.LinkUp(to, dir.Opposite())
	if !fwd && !rev {
		return false
	}
	acc := m.newAcc()
	if fwd {
		m.killDirected(c, from, dir, acc)
	}
	if rev {
		m.killDirected(c, to, dir.Opposite(), acc)
	}
	m.account(c, acc, trace.DropLinkDead)
	m.deadLinks++
	m.noteDeath(c)
	return true
}

// killDirected kills the directed link a -> neighbor(a,d) and excises
// every wormhole with a flit on it: worms crossing it are resolved from
// the transmitter's output VCs back upstream to their source and from the
// receiver's input VCs forward to their sink; in-flight wire traffic,
// retransmission shifters and replay copies are destroyed with them.
func (m *mortalityState) killDirected(c uint64, a flit.NodeID, d topology.Port, acc *killAcc) {
	b, _ := m.n.topo.Neighbor(a, d)
	m.n.topo.FailLink(a, d)
	if m.maps[a].MarkLinkDead(a, d) {
		m.frontierAdd(a)
	}
	if m.maps[b].MarkLinkDead(a, d) {
		m.frontierAdd(b)
	}
	before := acc.flits
	r := m.n.routers[a]
	for vc := 0; vc < m.n.cfg.VCs; vc++ {
		if ip, iv, ok := r.OutputOwner(d, vc); ok {
			m.killChainUp(c, a, ip, iv, acc)
		}
	}
	if tx := r.Transmitter(d); tx != nil {
		tx.AbandonAll(acc.observe)
	}
	if ch := m.chanOf(a, d); ch != nil {
		ch.DestroyData(-1, acc.observe)
		ch.DropNACKs()
	}
	rb := m.n.routers[b]
	q := d.Opposite()
	for vc := 0; vc < m.n.cfg.VCs; vc++ {
		if _, resident := rb.WormDst(q, vc); resident {
			m.killChainDown(c, b, q, vc, acc)
		}
	}
	m.emit(trace.Event{
		Cycle: c, Kind: trace.LinkDied,
		Node: int32(a), Port: int8(d), VC: -1,
		Aux: uint64(acc.flits - before),
	})
}

// killChainUp excises the worm segment at input VC (node, p, vc) and
// everything behind it, back to and including the source PE's staged
// flits. The full chain must go: a surviving upstream remnant would
// deliver an orphan head into the reset VC and wedge it forever.
func (m *mortalityState) killChainUp(c uint64, node flit.NodeID, p topology.Port, vc int, acc *killAcc) {
	m.n.routers[node].KillVC(c, p, vc, acc.observe)
	if p == topology.Local {
		if ch := m.n.peUp[node]; ch != nil {
			ch.DestroyData(vc, acc.observe)
		}
		src := m.n.pes[node]
		src.tx.AbandonVC(vc, acc.observe)
		src.killInjection(vc, acc.observe)
		return
	}
	u, ok := m.n.topo.Neighbor(node, p)
	if !ok {
		return
	}
	q := p.Opposite()
	if ch := m.chanOf(u, q); ch != nil {
		ch.DestroyData(vc, acc.observe)
	}
	if tx := m.n.routers[u].Transmitter(q); tx != nil {
		tx.AbandonVC(vc, acc.observe)
	}
	if ip, iv, ok2 := m.n.routers[u].OutputOwner(q, vc); ok2 {
		m.killChainUp(c, u, ip, iv, acc)
	}
}

// killChainDown excises the worm segment at input VC (node, p, vc) and
// everything ahead of it, forward to and including the sink's
// half-reassembled packet.
func (m *mortalityState) killChainDown(c uint64, node flit.NodeID, p topology.Port, vc int, acc *killAcc) {
	r := m.n.routers[node]
	outP, outV, active := r.InputBinding(p, vc)
	r.KillVC(c, p, vc, acc.observe)
	if !active {
		return
	}
	if outP == topology.Local {
		if ch := m.n.peDown[node]; ch != nil {
			ch.DestroyData(outV, acc.observe)
		}
		if tx := r.Transmitter(topology.Local); tx != nil {
			tx.AbandonVC(outV, acc.observe)
		}
		if pid, src, ok := m.n.pes[node].killSink(outV); ok {
			acc.addPID(pid, src)
		}
		return
	}
	dn, ok := m.n.topo.Neighbor(node, outP)
	if !ok {
		return
	}
	if ch := m.chanOf(node, outP); ch != nil {
		ch.DestroyData(outV, acc.observe)
	}
	if tx := r.Transmitter(outP); tx != nil {
		tx.AbandonVC(outV, acc.observe)
	}
	m.killChainDown(c, dn, outP.Opposite(), outV, acc)
}

// killRouter kills a router: every incident link dies (both directions),
// its PE's injection and sink state is destroyed, and the node stops
// participating. Returns false if the router was already dead.
func (m *mortalityState) killRouter(c uint64, node flit.NodeID) bool {
	if m.deadNode[node] {
		return false
	}
	m.deadNode[node] = true
	m.deadRouters++
	acc := m.newAcc()

	// The dead router can no longer gossip, so its neighbors learn of
	// the death directly at the boundary (they observe the silence).
	m.maps[node].MarkRouterDead(node)
	for _, d := range mortDirs {
		if nb, ok := m.n.topo.Neighbor(node, d); ok && !m.deadNode[nb] {
			if m.maps[nb].MarkRouterDead(node) {
				m.frontierAdd(nb)
			}
		}
	}

	for _, d := range mortDirs {
		if m.n.topo.LinkUp(node, d) {
			m.killDirected(c, node, d, acc)
		}
		op := d.Opposite()
		if nb, ok := m.n.topo.Neighbor(node, d); ok && m.n.topo.LinkUp(nb, op) {
			m.killDirected(c, nb, op, acc)
		}
	}

	// Worms terminating at the dead node that already cleared its input
	// ports (bound Local), then the PE itself: staged injections, queued
	// packets, control traffic, retention copies and half-built sinks.
	r := m.n.routers[node]
	for _, p := range mortDirs {
		for vc := 0; vc < m.n.cfg.VCs; vc++ {
			if _, resident := r.WormDst(p, vc); resident {
				m.killChainDown(c, node, p, vc, acc)
			}
		}
	}
	for vc := 0; vc < m.n.cfg.VCs; vc++ {
		if _, resident := r.WormDst(topology.Local, vc); resident {
			m.killChainDown(c, node, topology.Local, vc, acc)
		}
	}
	dead := m.n.pes[node]
	if ch := m.n.peUp[node]; ch != nil {
		ch.DestroyData(-1, acc.observe)
		ch.DropNACKs()
	}
	dead.tx.AbandonAll(acc.observe)
	for vc := 0; vc < m.n.cfg.VCs; vc++ {
		dead.killInjection(vc, acc.observe)
	}
	dead.killQueued(acc)
	if ch := m.n.peDown[node]; ch != nil {
		ch.DestroyData(-1, acc.observe)
		ch.DropNACKs()
	}
	if tx := r.Transmitter(topology.Local); tx != nil {
		tx.AbandonAll(acc.observe)
	}
	for vc := 0; vc < m.n.cfg.VCs; vc++ {
		if pid, src, ok := dead.killSink(vc); ok {
			acc.addPID(pid, src)
		}
	}
	dead.killRetention()

	m.emit(trace.Event{
		Cycle: c, Kind: trace.RouterDied,
		Node: int32(node), Port: -1, VC: -1,
		Aux: uint64(acc.flits),
	})
	m.account(c, acc, trace.DropLinkDead)
	m.noteDeath(c)
	return true
}

// sweepStuckWorms excises worms waiting on allocations that can never be
// granted under the post-fault topology (empty legal candidate set —
// permanent, since hard faults are irreversible). Each is killed with its
// full upstream chain and its packet ruled undeliverable.
func (m *mortalityState) sweepStuckWorms(c uint64) {
	type site struct {
		node flit.NodeID
		p    topology.Port
		vc   int
	}
	var sites []site
	for i, r := range m.n.routers {
		id := flit.NodeID(i)
		r.EachWaitingVC(func(p topology.Port, vc int, dst flit.NodeID) {
			if r.StuckWorm(p, vc) {
				sites = append(sites, site{id, p, vc})
			}
		})
	}
	if len(sites) == 0 {
		return
	}
	acc := m.newAcc()
	for _, s := range sites {
		// An earlier chain kill this sweep may already have excised it.
		if _, resident := m.n.routers[s.node].WormDst(s.p, s.vc); !resident {
			continue
		}
		m.killChainUp(c, s.node, s.p, s.vc, acc)
	}
	m.account(c, acc, trace.DropUnreachable)
}

// deadSendViolation is wired as router.Config.DeadSend: a flit crossing
// toward a link the local fault map marks dead means a boundary kill
// sweep missed a worm.
func (n *Network) deadSendViolation(cycle uint64, node flit.NodeID, port topology.Port, vc int, pid uint64) {
	n.inv.Report(invariant.Violation{
		Check: "dead-send", Cycle: cycle,
		Node: int32(node), Port: int8(port), VC: int8(vc), PID: pid,
		Msg: "flit sent toward a link the local fault map marks dead",
	})
}
