package network

import (
	"testing"

	"ftnoc/internal/routing"
)

// deadlockProneConfig builds a network where fully-adaptive minimal
// routing with a single VC and tiny buffers deadlocks quickly: the exact
// hazard the paper's recovery scheme (§3.2) exists for.
func deadlockProneConfig() Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = routing.MinimalAdaptive
	cfg.VCs = 1
	// T=6, R=3, M=4 satisfies the Eq. (1) worst case exactly as the
	// paper's Fig. 11 example does (6+3 = 9 > 4x2 = 8). A 4-deep buffer
	// would be under-provisioned for partial-packet absorption and
	// recovery could legitimately fail.
	cfg.BufDepth = 6
	cfg.InjectionRate = 0.6
	cfg.PacketSize = 4
	cfg.Cthres = 32
	cfg.WarmupMessages = 0
	// Burst workload: a bounded population must drain completely. The
	// Eq. (1) theorem speaks to a fixed set of deadlocked messages;
	// sustained 2x-oversaturation would regenerate deadlocks faster than
	// any detection scheme can clear them.
	cfg.InjectLimit = 3_000
	cfg.TotalMessages = 3_000
	cfg.StallCycles = 20_000
	cfg.MaxCycles = 400_000
	cfg.Seed = 1
	return cfg
}

// Without recovery, the adaptive single-VC network wedges: the run must
// hit the stall detector with undelivered traffic.
func TestAdaptiveSingleVCDeadlocksWithoutRecovery(t *testing.T) {
	cfg := deadlockProneConfig()
	cfg.RecoveryEnabled = false
	res := New(cfg).Run()
	if !res.Stalled {
		t.Skip("workload did not deadlock without recovery at this seed; recovery test still meaningful")
	}
	if res.Delivered >= cfg.TotalMessages {
		t.Fatal("stalled run claims full delivery")
	}
}

// With probing + retransmission-buffer recovery enabled, the same
// workload completes, and recovery actually fires.
func TestDeadlockRecoveryUnblocksNetwork(t *testing.T) {
	cfg := deadlockProneConfig()
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatalf("network stalled despite recovery (recoveries=%d probes=%d delivered=%d)",
			res.Recoveries, res.ProbesSent, res.Delivered)
	}
	if res.Delivered < cfg.TotalMessages {
		t.Fatalf("delivered %d/%d", res.Delivered, cfg.TotalMessages)
	}
	if res.ProbesSent == 0 {
		t.Fatal("no probes sent in a deadlock-prone workload")
	}
	if res.Recoveries == 0 {
		t.Fatal("no recovery episodes despite completing a deadlock-prone workload")
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 || res.StrayFlits != 0 {
		t.Fatalf("recovery corrupted traffic: %+v", res)
	}
}

// Probing must not produce false positives: under heavy but deadlock-free
// (XY) traffic, blocked packets may exceed Cthres and send probes, but no
// probe may complete a loop (XY has no cyclic channel dependencies), so
// no node may ever enter recovery.
func TestNoFalsePositivesUnderXY(t *testing.T) {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.9 // deep saturation: plenty of long blocking
	cfg.Cthres = 16
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 2_000
	cfg.MaxCycles = 400_000
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("XY network stalled")
	}
	if res.Recoveries != 0 {
		t.Fatalf("probing falsely confirmed deadlock %d times in a deadlock-free network (probes=%d)",
			res.Recoveries, res.ProbesSent)
	}
}

// The recovery path must also work while link errors are being injected:
// the shared retransmission buffers serve both duties (§3.2's resource-
// sharing claim).
func TestRecoveryWithLinkErrors(t *testing.T) {
	cfg := deadlockProneConfig()
	cfg.Faults.Link = 0.01
	cfg.TotalMessages = 2_000
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatalf("stalled: %+v", res)
	}
	if res.Delivered < cfg.TotalMessages {
		t.Fatalf("delivered %d/%d", res.Delivered, cfg.TotalMessages)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("corruption leaked: %+v", res)
	}
}
