package network

import (
	"strings"
	"testing"
)

// Packet tracing records a coherent journey: the packet appears at its
// source router's Local port, moves through intermediate routers, and
// finally disappears on delivery.
func TestPacketTracing(t *testing.T) {
	cfg := smallConfig()
	cfg.InjectionRate = 0.05
	cfg.TotalMessages = 300
	cfg.WarmupMessages = 0
	cfg.TracePIDs = []uint64{5, 17}
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("stalled")
	}
	if len(res.Traces) != 2 {
		t.Fatalf("traced %d packets, want 2", len(res.Traces))
	}
	for pid, lines := range res.Traces {
		if len(lines) < 2 {
			t.Fatalf("packet %d trace too short: %v", pid, lines)
		}
		// First sighting must be at a Local input port (injection).
		if !strings.Contains(lines[0], "/L") {
			t.Errorf("packet %d first seen off the local port: %q", pid, lines[0])
		}
		// The journey must end with the packet gone (delivered).
		last := lines[len(lines)-1]
		if !strings.Contains(last, "delivered") {
			t.Errorf("packet %d trace does not end in delivery: %q", pid, last)
		}
		for _, l := range lines {
			if !strings.HasPrefix(l, "cycle ") {
				t.Errorf("malformed trace line %q", l)
			}
		}
	}
}

// Tracing must not perturb the simulation: identical results with and
// without it.
func TestTracingIsPure(t *testing.T) {
	base := smallConfig()
	base.TotalMessages = 400
	base.WarmupMessages = 100
	a := New(base).Run()
	traced := base
	traced.TracePIDs = []uint64{1, 2, 3}
	b := New(traced).Run()
	if a.AvgLatency != b.AvgLatency || a.Cycles != b.Cycles || a.TotalEvents != b.TotalEvents {
		t.Fatal("tracing perturbed the simulation")
	}
}

func TestSnapshot(t *testing.T) {
	cfg := smallConfig()
	n := New(cfg)
	for i := 0; i < 40; i++ {
		n.Kernel().Step()
	}
	s := n.Snapshot()
	if !strings.Contains(s, "cycle 40") {
		t.Fatalf("snapshot missing cycle header: %q", s)
	}
	// At 0.25 injection some router must be holding flits by cycle 40.
	if !strings.Contains(s, "router") {
		t.Fatalf("snapshot shows no occupied routers:\n%s", s)
	}
}
