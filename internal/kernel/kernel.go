// Package kernel names the simulation scheduler implementations. The
// choice is pure scheduling policy: every kernel produces byte-identical
// Results (the differential grids in internal/network prove it), so the
// kind is excluded from canonical config JSON and campaign hashes — it
// may change how fast an answer arrives, never the answer.
package kernel

import (
	"fmt"
	"strings"
)

// Kind selects a simulation kernel. The zero value is invalid so that a
// Config which never chose one can be given the default explicitly.
type Kind uint8

const (
	// Naive ticks every actor every cycle — the slow, obviously-correct
	// oracle the other kernels are differentially tested against.
	Naive Kind = iota + 1
	// Quiescent skips actors that proved themselves idle, waking them on
	// pipe delivery or a self-declared timer (the PR 4 kernel).
	Quiescent
	// Event is the calendar-queue discrete-event scheduler: actors are
	// stepped only on cycles where an event is due, and cost scales with
	// events rather than cycles x actors. The default.
	Event
	// Parallel partitions the mesh into contiguous router regions and
	// steps each region on its own goroutine, synchronising at a
	// per-cycle barrier. Cross-region traffic is handed off through the
	// same latched delay lines, applied in (cycle, registration-order)
	// sequence, so results stay byte-identical to the serial kernels.
	Parallel
)

// String returns the canonical lower-case name, the exact form Parse
// accepts (Parse ∘ String is the identity; the fuzz suite holds it).
func (k Kind) String() string {
	switch k {
	case Naive:
		return "naive"
	case Quiescent:
		return "quiescent"
	case Event:
		return "event"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("kernel.Kind(%d)", uint8(k))
}

// Valid reports whether k names a real kernel.
func (k Kind) Valid() bool {
	return k == Naive || k == Quiescent || k == Event || k == Parallel
}

// Kinds returns every valid kernel kind in declaration order. Tools that
// enumerate kernels (benchmarks, differential harnesses) iterate this
// rather than hardcoding the list, so a new kernel cannot be missed.
func Kinds() []Kind { return []Kind{Naive, Quiescent, Event, Parallel} }

// Parse resolves a kernel name (case-insensitive): naive, quiescent,
// event, parallel.
func Parse(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "naive":
		return Naive, nil
	case "quiescent":
		return Quiescent, nil
	case "event":
		return Event, nil
	case "parallel":
		return Parallel, nil
	}
	return 0, fmt.Errorf("unknown kernel %q (want naive, quiescent, event or parallel)", s)
}
