package kernel

import (
	"strings"
	"testing"
)

func TestParseStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
		if !k.Valid() {
			t.Fatalf("%v.Valid() = false", k)
		}
	}
}

func TestParseCaseAndSpace(t *testing.T) {
	for in, want := range map[string]Kind{
		"Naive":      Naive,
		"QUIESCENT":  Quiescent,
		"  event  ":  Event,
		"\tEvEnT\n":  Event,
		" quiescent": Quiescent,
		"Parallel":   Parallel,
		"PARALLEL ":  Parallel,
	} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	for _, in := range []string{"", "fast", "naïve", "event kernel", "quiescent,event"} {
		if k, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) = %v, want error", in, k)
		} else if !strings.Contains(err.Error(), "kernel") {
			t.Fatalf("Parse(%q) error %q does not name the problem", in, err)
		}
	}
}

func TestInvalidKindString(t *testing.T) {
	var zero Kind
	if zero.Valid() {
		t.Fatal("zero Kind reports valid")
	}
	if s := Kind(42).String(); !strings.Contains(s, "42") {
		t.Fatalf("out-of-range String() = %q", s)
	}
}
