package kernel

import "testing"

// FuzzParse holds the kernel-name parser to: no panics; accepted names
// map to a known kernel; and the kernel's String form parses back to the
// same kernel (the CLI prints names it must itself accept).
func FuzzParse(f *testing.F) {
	for _, s := range []string{"naive", "quiescent", "event", "parallel", "EVENT", " naive ", "", "fast", "calendar", "Parallel "} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := Parse(s)
		if err != nil {
			return
		}
		if !k.Valid() {
			t.Fatalf("Parse(%q) produced unknown kernel %d", s, k)
		}
		back, err := Parse(k.String())
		if err != nil || back != k {
			t.Fatalf("String form %q of Parse(%q) does not round-trip: %v / %v", k, s, back, err)
		}
	})
}
