package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLatencyStats(t *testing.T) {
	var s LatencyStats
	if s.Mean() != 0 || s.Percentile(95) != 0 || s.Max() != 0 {
		t.Fatal("empty stats not zero")
	}
	for _, v := range []uint64{10, 20, 30, 40, 50} {
		s.Record(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 30 {
		t.Fatalf("Mean = %v, want 30", s.Mean())
	}
	if s.Max() != 50 {
		t.Fatalf("Max = %v", s.Max())
	}
	if p := s.Percentile(50); p != 30 {
		t.Fatalf("P50 = %v, want 30", p)
	}
	if p := s.Percentile(100); p != 50 {
		t.Fatalf("P100 = %v, want 50", p)
	}
	if p := s.Percentile(1); p != 10 {
		t.Fatalf("P1 = %v, want 10", p)
	}
}

// Out-of-domain percentile queries must come back NaN, never a silently
// clamped extremum a caller could mistake for a statistic.
func TestPercentileRejectsBadP(t *testing.T) {
	var s LatencyStats
	for _, v := range []uint64{10, 20, 30} {
		s.Record(v)
	}
	for _, p := range []float64{0, -1, -100, 100.001, 1e9, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := s.Percentile(p); !math.IsNaN(got) {
			t.Errorf("Percentile(%v) = %v, want NaN", p, got)
		}
	}
	// The domain boundary itself stays valid.
	if got := s.Percentile(100); got != 30 {
		t.Errorf("Percentile(100) = %v, want 30", got)
	}
	if got := s.Percentile(0.001); got != 10 {
		t.Errorf("Percentile(0.001) = %v, want 10", got)
	}
	// An empty distribution with a bad p is still a domain error.
	var empty LatencyStats
	if got := empty.Percentile(-5); !math.IsNaN(got) {
		t.Errorf("empty Percentile(-5) = %v, want NaN", got)
	}
}

func TestLatencyHistogram(t *testing.T) {
	var s LatencyStats
	for _, v := range []uint64{1, 5, 11, 15, 99, 1000} {
		s.Record(v)
	}
	h := s.Histogram(10, 5)
	if h[0] != 2 || h[1] != 2 || h[4] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

// Property: mean lies within [min, max] and percentiles are monotone.
func TestLatencyProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s LatencyStats
		lo, hi := float64(raw[0]), float64(raw[0])
		for _, v := range raw {
			s.Record(uint64(v))
			lo = math.Min(lo, float64(v))
			hi = math.Max(hi, float64(v))
		}
		if s.Mean() < lo || s.Mean() > hi {
			return false
		}
		prev := 0.0
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	if u.Mean() != 0 {
		t.Fatal("empty utilization not 0")
	}
	u.Sample(1, 4)
	u.Sample(3, 4)
	if u.Mean() != 0.5 {
		t.Fatalf("Mean = %v, want 0.5", u.Mean())
	}
	if u.Samples() != 2 {
		t.Fatalf("Samples = %d", u.Samples())
	}
	u.Sample(5, 0) // zero capacity is ignored
	if u.Samples() != 2 {
		t.Fatal("zero-capacity sample counted")
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{FlitsDelivered: 6400, MessagesDelivered: 1600, Cycles: 100, Nodes: 64}
	if got := tp.FlitsPerNodePerCycle(); got != 1.0 {
		t.Fatalf("throughput = %v, want 1.0", got)
	}
	if (Throughput{}).FlitsPerNodePerCycle() != 0 {
		t.Fatal("empty throughput not 0")
	}
	if tp.String() == "" {
		t.Fatal("empty string")
	}
}

func TestEventsAdd(t *testing.T) {
	a := Events{BufWrites: 1, LinkTraversals: 2, ACChecks: 3, RTComputes: 4}
	b := Events{BufWrites: 10, Probes: 5, RTComputes: 1}
	a.Add(b)
	if a.BufWrites != 11 || a.LinkTraversals != 2 || a.Probes != 5 || a.RTComputes != 5 || a.ACChecks != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestMeanCI95(t *testing.T) {
	if e := MeanCI95(nil); e != (Estimate{}) {
		t.Fatalf("empty input: got %+v, want zero", e)
	}
	if e := MeanCI95([]float64{7}); e.Mean != 7 || e.CI95 != 0 || e.N != 1 {
		t.Fatalf("single sample: got %+v", e)
	}
	// {1..5}: mean 3, sd sqrt(2.5), t(4 df) = 2.776 -> CI 2.776*sd/sqrt(5).
	e := MeanCI95([]float64{1, 2, 3, 4, 5})
	if e.Mean != 3 || e.N != 5 {
		t.Fatalf("mean/N: got %+v", e)
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(e.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %g, want %g", e.CI95, want)
	}
	// Identical samples: zero-width interval.
	if e := MeanCI95([]float64{4, 4, 4, 4}); e.CI95 != 0 || e.Mean != 4 {
		t.Fatalf("constant samples: got %+v", e)
	}
	// Large N falls back to the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2) // alternating 0/1: sd ~ 0.5025
	}
	eb := MeanCI95(big)
	sd := math.Sqrt(0.25 * 100 / 99)
	if want := 1.96 * sd / 10; math.Abs(eb.CI95-want) > 1e-9 {
		t.Fatalf("large-N CI95 = %g, want %g", eb.CI95, want)
	}
}

func TestMeanCI95NaNPoisons(t *testing.T) {
	// A NaN replicate must surface as a fully-NaN estimate, whatever its
	// position and whether the sample is replicated or not: a corrupted
	// measurement may not hide behind a finite mean or a zero half-width.
	cases := [][]float64{
		{math.NaN()},
		{math.NaN(), 2, 3},
		{1, math.NaN(), 3},
		{1, 2, math.NaN()},
	}
	for _, samples := range cases {
		e := MeanCI95(samples)
		if !math.IsNaN(e.Mean) || !math.IsNaN(e.CI95) {
			t.Errorf("MeanCI95(%v) = %+v, want NaN mean and NaN CI95", samples, e)
		}
		if e.N != len(samples) {
			t.Errorf("MeanCI95(%v).N = %d, want %d", samples, e.N, len(samples))
		}
	}
	// Infinities are not silently poisoned: the mean propagates them.
	if e := MeanCI95([]float64{math.Inf(1), 1}); !math.IsInf(e.Mean, 1) {
		t.Errorf("infinite sample lost: %+v", e)
	}
}

func TestEstimateString(t *testing.T) {
	if s := (Estimate{Mean: 3, N: 1}).String(); s != "3" {
		t.Fatalf("single-sample string %q", s)
	}
	if s := (Estimate{Mean: 3, CI95: 0.5, N: 4}).String(); s != "3 ± 0.5" {
		t.Fatalf("replicated string %q", s)
	}
}
