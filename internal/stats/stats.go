// Package stats collects the measurements the paper reports: average
// message latency, energy-relevant event counts, buffer utilization
// (Figs. 8–9), corrected-error counts (Fig. 13a), and throughput.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Events tallies the microarchitectural activity that the power model
// converts to energy. A single Events instance is shared by every
// component of a network (the simulator is single-threaded by design).
type Events struct {
	BufWrites       uint64 // flit written into an input VC buffer
	BufReads        uint64 // flit read out of an input VC buffer
	XbTraversals    uint64 // flit through the crossbar
	LinkTraversals  uint64 // flit across an inter-router link
	LocalTraversals uint64 // flit across a PE<->router channel
	VAAllocs        uint64 // VC allocator arbitration operations
	SAAllocs        uint64 // switch allocator arbitration operations
	RetransWrites   uint64 // flit captured into a retransmission buffer
	Retransmitted   uint64 // flit re-sent from a retransmission buffer
	NACKs           uint64 // NACK handshake signals
	Credits         uint64 // credit handshake signals
	Probes          uint64 // deadlock probe/activation control flits
	ECCDecodes      uint64 // SEC/DED decode operations
	ECCCorrections  uint64 // single-bit corrections performed
	ACChecks        uint64 // allocation comparator evaluations
	RTComputes      uint64 // routing-unit computations
}

// Add accumulates o into e.
func (e *Events) Add(o Events) {
	e.BufWrites += o.BufWrites
	e.BufReads += o.BufReads
	e.XbTraversals += o.XbTraversals
	e.LinkTraversals += o.LinkTraversals
	e.LocalTraversals += o.LocalTraversals
	e.VAAllocs += o.VAAllocs
	e.SAAllocs += o.SAAllocs
	e.RetransWrites += o.RetransWrites
	e.Retransmitted += o.Retransmitted
	e.NACKs += o.NACKs
	e.Credits += o.Credits
	e.Probes += o.Probes
	e.ECCDecodes += o.ECCDecodes
	e.ECCCorrections += o.ECCCorrections
	e.ACChecks += o.ACChecks
	e.RTComputes += o.RTComputes
}

// LatencyStats accumulates per-message latency samples (injection to tail
// ejection, in cycles) with warm-up discarding handled by the caller.
type LatencyStats struct {
	samples []float64
	sum     float64
}

// Record adds one message latency sample.
func (s *LatencyStats) Record(cycles uint64) {
	v := float64(cycles)
	s.samples = append(s.samples, v)
	s.sum += v
}

// Count returns the number of recorded samples.
func (s *LatencyStats) Count() int { return len(s.samples) }

// Mean returns the average latency, or 0 with no samples.
func (s *LatencyStats) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or 0 with no samples. An out-of-domain p — NaN, p <= 0
// or p > 100 — returns NaN rather than silently clamping to an
// extremum, so callers cannot mistake a bad query for a valid statistic.
func (s *LatencyStats) Percentile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p > 100 {
		return math.NaN()
	}
	if len(s.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.samples))
	copy(sorted, s.samples)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Max returns the largest sample.
func (s *LatencyStats) Max() float64 {
	m := 0.0
	for _, v := range s.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Histogram buckets samples into fixed-width bins for trace tooling.
func (s *LatencyStats) Histogram(binWidth float64, bins int) []int {
	h := make([]int, bins)
	for _, v := range s.samples {
		b := int(v / binWidth)
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h
}

// Utilization tracks the time-averaged occupancy fraction of a set of
// buffers, sampled once per cycle: the metric of Figs. 8 and 9.
type Utilization struct {
	sumFrac float64
	n       uint64
}

// Sample records one cycle's occupancy out of capacity.
func (u *Utilization) Sample(occupied, capacity int) {
	if capacity <= 0 {
		return
	}
	u.sumFrac += float64(occupied) / float64(capacity)
	u.n++
}

// Mean returns the time-averaged utilization in [0, 1].
func (u *Utilization) Mean() float64 {
	if u.n == 0 {
		return 0
	}
	return u.sumFrac / float64(u.n)
}

// Samples returns how many cycles were sampled.
func (u *Utilization) Samples() uint64 { return u.n }

// Estimate is a replicated measurement: the sample mean of N replicates
// plus the half-width of its 95% confidence interval (Student's t).
// N <= 1 yields a zero half-width — a single replicate carries no
// dispersion information.
type Estimate struct {
	Mean float64
	CI95 float64 // half-width; the interval is Mean ± CI95
	N    int
}

// String renders "mean ± ci" (or just the mean for N <= 1).
func (e Estimate) String() string {
	if e.N <= 1 || e.CI95 == 0 {
		return fmt.Sprintf("%.4g", e.Mean)
	}
	return fmt.Sprintf("%.4g ± %.3g", e.Mean, e.CI95)
}

// t95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond that the normal approximation (1.96) is within 2%.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 estimates the population mean from replicate samples: the
// sample mean and the 95% confidence half-width t(n-1) * s / sqrt(n).
// Empty input returns a zero Estimate; a single sample returns its value
// with a zero half-width (no dispersion information). A NaN sample
// poisons the whole estimate — both fields come back NaN, never a
// half-computed mixture — so a corrupted replicate cannot masquerade as
// a tight confidence interval.
func MeanCI95(samples []float64) Estimate {
	n := len(samples)
	if n == 0 {
		return Estimate{}
	}
	for _, v := range samples {
		if math.IsNaN(v) {
			return Estimate{Mean: math.NaN(), CI95: math.NaN(), N: n}
		}
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Estimate{Mean: mean, N: 1}
	}
	ss := 0.0
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	df := n - 1
	t := 1.96
	if df <= len(t95) {
		t = t95[df-1]
	}
	return Estimate{Mean: mean, CI95: t * sd / math.Sqrt(float64(n)), N: n}
}

// Throughput summarises delivery over an interval.
type Throughput struct {
	// FlitsDelivered counts flits ejected at destinations.
	FlitsDelivered uint64
	// MessagesDelivered counts complete messages ejected.
	MessagesDelivered uint64
	// Cycles is the measurement window length.
	Cycles uint64
	// Nodes is the network size.
	Nodes int
}

// FlitsPerNodePerCycle returns accepted traffic in the paper's injection
// units.
func (t Throughput) FlitsPerNodePerCycle() float64 {
	if t.Cycles == 0 || t.Nodes == 0 {
		return 0
	}
	return float64(t.FlitsDelivered) / float64(t.Cycles) / float64(t.Nodes)
}

// String implements fmt.Stringer.
func (t Throughput) String() string {
	return fmt.Sprintf("%d msgs (%d flits) in %d cycles = %.4f flits/node/cycle",
		t.MessagesDelivered, t.FlitsDelivered, t.Cycles, t.FlitsPerNodePerCycle())
}
