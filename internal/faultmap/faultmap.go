// Package faultmap is the online hard-fault directory of the network:
// which links and routers have permanently died. Every router carries
// its own Map — a local, possibly stale view that starts empty and is
// filled in by dissemination from the fault sites — and the network's
// reconfiguration controller keeps one authoritative Map that the
// boundary kill sweeps update first.
//
// A Map is monotone: links and routers only ever die, they never come
// back, so merging views never loses information and local staleness is
// always an *under*-approximation of the damage (a router may not yet
// know about a remote death, but everything its map marks dead really
// is dead). That monotonicity is what makes local admission decisions
// sound: a destination the local map proves unreachable is genuinely
// unreachable.
package faultmap

import (
	"errors"
	"fmt"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// Map is one observer's view of the network's hard faults. The zero
// value is unusable; use New.
type Map struct {
	nodes int
	// dirs[n] holds one bit per outgoing mesh direction of node n
	// (bit Port-1 for North..West): set means the directed link is dead.
	dirs []uint8
	// dead[n] reports node n's router has died.
	dead []bool
	// version counts state changes, so dissemination can cheaply detect
	// "this view learned something" without diffing the bitmaps.
	version uint64
	// deadLinks / deadRouters are maintained counts of set entries.
	deadLinks, deadRouters int
}

// New returns an empty (all-alive) map over the given node count.
func New(nodes int) *Map {
	if nodes <= 0 {
		panic("faultmap: node count must be positive")
	}
	return &Map{nodes: nodes, dirs: make([]uint8, nodes), dead: make([]bool, nodes)}
}

// Nodes returns the node count the map covers.
func (m *Map) Nodes() int { return m.nodes }

// Version returns the map's change counter; it increases on every
// MarkLinkDead / MarkRouterDead / MergeFrom that learned something new.
func (m *Map) Version() uint64 { return m.version }

// DeadLinks returns the number of directed links marked dead.
func (m *Map) DeadLinks() int { return m.deadLinks }

// DeadRouters returns the number of routers marked dead.
func (m *Map) DeadRouters() int { return m.deadRouters }

// dirBit maps a mesh direction to its bitmask, panicking on Local (the
// PE link has no independent hard-fault identity: it dies with its
// router) and out-of-range ports.
func dirBit(dir topology.Port) uint8 {
	if dir < topology.North || dir > topology.West {
		panic(fmt.Sprintf("faultmap: port %v is not a mesh direction", dir))
	}
	return 1 << (uint8(dir) - 1)
}

// MarkLinkDead records the death of the directed link (from, dir),
// reporting whether the map learned something new.
func (m *Map) MarkLinkDead(from flit.NodeID, dir topology.Port) bool {
	bit := dirBit(dir)
	if m.dirs[from]&bit != 0 {
		return false
	}
	m.dirs[from] |= bit
	m.deadLinks++
	m.version++
	return true
}

// MarkRouterDead records the death of a router, reporting whether the
// map learned something new.
func (m *Map) MarkRouterDead(n flit.NodeID) bool {
	if m.dead[n] {
		return false
	}
	m.dead[n] = true
	m.deadRouters++
	m.version++
	return true
}

// LinkDead reports whether the directed link (from, dir) is marked
// dead. Local is never dead as a link (router death covers it);
// out-of-mesh directions are not links at all.
func (m *Map) LinkDead(from flit.NodeID, dir topology.Port) bool {
	if dir < topology.North || dir > topology.West {
		return false
	}
	return m.dirs[from]&(1<<(uint8(dir)-1)) != 0
}

// RouterDead reports whether node n's router is marked dead.
func (m *Map) RouterDead(n flit.NodeID) bool { return m.dead[n] }

// MergeFrom folds every fault in src into m, reporting whether m
// learned anything. It is the dissemination primitive: a router merges
// its live neighbors' views one hop per cycle, so knowledge spreads
// along surviving links like a frontier flood.
func (m *Map) MergeFrom(src *Map) bool {
	if src.nodes != m.nodes {
		panic("faultmap: merging maps of different sizes")
	}
	changed := false
	for n := 0; n < m.nodes; n++ {
		if add := src.dirs[n] &^ m.dirs[n]; add != 0 {
			m.dirs[n] |= add
			m.deadLinks += popcount4(add)
			changed = true
		}
		if src.dead[n] && !m.dead[n] {
			m.dead[n] = true
			m.deadRouters++
			changed = true
		}
	}
	if changed {
		m.version++
	}
	return changed
}

// Clone returns an independent copy of the map.
func (m *Map) Clone() *Map {
	c := New(m.nodes)
	copy(c.dirs, m.dirs)
	copy(c.dead, m.dead)
	c.version = m.version
	c.deadLinks, c.deadRouters = m.deadLinks, m.deadRouters
	return c
}

// Equal reports whether two maps record the same faults (version
// counters are histories, not state, and do not participate).
func (m *Map) Equal(o *Map) bool {
	if m.nodes != o.nodes {
		return false
	}
	for n := 0; n < m.nodes; n++ {
		if m.dirs[n] != o.dirs[n] || m.dead[n] != o.dead[n] {
			return false
		}
	}
	return true
}

// countNonzero counts the nodes with at least one dead outgoing link.
func countNonzero(dirs []uint8) int {
	n := 0
	for _, d := range dirs {
		if d != 0 {
			n++
		}
	}
	return n
}

// popcount4 counts the set bits of a 4-bit direction mask.
func popcount4(b uint8) int {
	b = b&0x5 + (b>>1)&0x5
	return int(b&0x3 + (b>>2)&0x3)
}

// Wire codec. The encoding is canonical (one byte string per fault
// state) and compact: a two-byte magic, uvarint node count and version,
// then the dead-link table as (delta-encoded node, direction mask)
// pairs and the dead-router set as delta-encoded node ids. Canonicality
// makes decode∘encode the identity and lets fuzzing assert the
// round-trip law byte-for-byte.
const (
	magic0 = 0xF7 // "fault"
	magic1 = 0x3A // "map", loosely
)

var errCodec = errors.New("faultmap: malformed encoding")

// AppendEncode appends the map's wire form to dst and returns the
// extended slice.
func (m *Map) AppendEncode(dst []byte) []byte {
	dst = append(dst, magic0, magic1)
	dst = appendUvarint(dst, uint64(m.nodes))
	dst = appendUvarint(dst, m.version)
	dst = appendUvarint(dst, uint64(countNonzero(m.dirs)))
	prev := uint64(0)
	for n := 0; n < m.nodes; n++ {
		if m.dirs[n] == 0 {
			continue
		}
		dst = appendUvarint(dst, uint64(n)-prev)
		dst = append(dst, m.dirs[n])
		prev = uint64(n)
	}
	dst = appendUvarint(dst, uint64(m.deadRouters))
	prev = 0
	for n := 0; n < m.nodes; n++ {
		if !m.dead[n] {
			continue
		}
		dst = appendUvarint(dst, uint64(n)-prev)
		prev = uint64(n)
	}
	return dst
}

// Encode returns the map's canonical wire form.
func (m *Map) Encode() []byte { return m.AppendEncode(nil) }

// maxNodes bounds a decoded map's size: the simulator itself caps
// meshes at 1<<16 nodes, and the bound keeps hostile inputs from
// allocating unbounded bitmaps.
const maxNodes = 1 << 16

// Decode parses a wire-form map. Every malformed input — bad magic,
// truncation, out-of-range nodes, zero or oversized direction masks,
// non-canonical delta coding, trailing bytes — returns an error; Decode
// never panics.
func Decode(data []byte) (*Map, error) {
	if len(data) < 2 || data[0] != magic0 || data[1] != magic1 {
		return nil, errCodec
	}
	data = data[2:]
	nodes, data, err := readUvarint(data)
	if err != nil || nodes == 0 || nodes > maxNodes {
		return nil, errCodec
	}
	m := New(int(nodes))
	if m.version, data, err = readUvarint(data); err != nil {
		return nil, errCodec
	}
	nLinks, data, err := readUvarint(data)
	if err != nil || nLinks > nodes {
		return nil, errCodec
	}
	prev, first := uint64(0), true
	for i := uint64(0); i < nLinks; i++ {
		var delta uint64
		if delta, data, err = readUvarint(data); err != nil {
			return nil, errCodec
		}
		if !first && delta == 0 {
			return nil, errCodec // non-canonical: nodes must be strictly ascending
		}
		n := prev + delta
		if n >= nodes || len(data) == 0 {
			return nil, errCodec
		}
		mask := data[0]
		data = data[1:]
		if mask == 0 || mask > 0xF {
			return nil, errCodec
		}
		m.dirs[n] = mask
		m.deadLinks += popcount4(mask)
		prev, first = n, false
	}
	nDead, data, err := readUvarint(data)
	if err != nil || nDead > nodes {
		return nil, errCodec
	}
	prev, first = 0, true
	for i := uint64(0); i < nDead; i++ {
		var delta uint64
		if delta, data, err = readUvarint(data); err != nil {
			return nil, errCodec
		}
		if !first && delta == 0 {
			return nil, errCodec
		}
		n := prev + delta
		if n >= nodes {
			return nil, errCodec
		}
		m.dead[n] = true
		m.deadRouters++
		prev, first = n, false
	}
	if len(data) != 0 {
		return nil, errCodec
	}
	return m, nil
}

// appendUvarint appends v in LEB128 form.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readUvarint consumes one canonical LEB128 value (no over-long
// encodings, at most ten bytes) from data.
func readUvarint(data []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(data); i++ {
		b := data[i]
		if i == 9 && b > 1 {
			return 0, nil, errCodec // overflows uint64
		}
		v |= uint64(b&0x7F) << (7 * i)
		if b < 0x80 {
			if b == 0 && i > 0 {
				return 0, nil, errCodec // over-long encoding
			}
			return v, data[i+1:], nil
		}
		if i == 9 {
			return 0, nil, errCodec
		}
	}
	return 0, nil, errCodec // truncated
}
