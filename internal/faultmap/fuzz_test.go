package faultmap

import (
	"bytes"
	"testing"
)

// FuzzCodec is the wire-codec robustness target: Decode must never
// panic on arbitrary bytes, and any input it accepts must re-encode
// byte-identically (the encoding is canonical, so decode∘encode is the
// identity on the image of Encode — and Decode accepts nothing outside
// that image).
func FuzzCodec(f *testing.F) {
	seed := New(16)
	seed.MarkLinkDead(3, 2)
	seed.MarkLinkDead(9, 4)
	seed.MarkRouterDead(12)
	f.Add(seed.Encode())
	f.Add(New(1).Encode())
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, 4, 0, 0, 0})
	f.Add([]byte{magic0, magic1, 0xFF, 0xFF, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		enc := m.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding:\n in: %x\nout: %x", data, enc)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !again.Equal(m) || again.Version() != m.Version() {
			t.Fatal("decode∘encode is not the identity")
		}
	})
}
