package faultmap

import (
	"bytes"
	"math/rand"
	"testing"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

func TestMarkAndQuery(t *testing.T) {
	m := New(16)
	if m.Version() != 0 || m.DeadLinks() != 0 || m.DeadRouters() != 0 {
		t.Fatal("fresh map not empty")
	}
	if !m.MarkLinkDead(3, topology.East) {
		t.Fatal("first mark reported nothing learned")
	}
	if m.MarkLinkDead(3, topology.East) {
		t.Fatal("repeat mark reported something learned")
	}
	if !m.LinkDead(3, topology.East) || m.LinkDead(3, topology.West) || m.LinkDead(4, topology.East) {
		t.Fatal("LinkDead wrong")
	}
	if !m.MarkRouterDead(7) || m.MarkRouterDead(7) {
		t.Fatal("router mark idempotence wrong")
	}
	if !m.RouterDead(7) || m.RouterDead(8) {
		t.Fatal("RouterDead wrong")
	}
	if m.DeadLinks() != 1 || m.DeadRouters() != 1 {
		t.Fatalf("counts: %d links, %d routers", m.DeadLinks(), m.DeadRouters())
	}
	if m.Version() != 2 {
		t.Fatalf("version %d, want 2", m.Version())
	}
	if m.LinkDead(3, topology.Local) {
		t.Fatal("Local can never be a dead link")
	}
}

func TestMergeFrom(t *testing.T) {
	a, b := New(8), New(8)
	a.MarkLinkDead(1, topology.North)
	b.MarkLinkDead(1, topology.North)
	b.MarkLinkDead(2, topology.South)
	b.MarkRouterDead(5)
	if !a.MergeFrom(b) {
		t.Fatal("merge learned nothing")
	}
	if a.MergeFrom(b) {
		t.Fatal("second merge learned something")
	}
	if !a.LinkDead(2, topology.South) || !a.RouterDead(5) {
		t.Fatal("merge dropped faults")
	}
	if a.DeadLinks() != 2 || a.DeadRouters() != 1 {
		t.Fatalf("counts after merge: %d links, %d routers", a.DeadLinks(), a.DeadRouters())
	}
	if !a.Equal(b) {
		t.Fatal("maps with identical faults not Equal")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nodes := 1 + rng.Intn(64)
		m := New(nodes)
		for i := 0; i < rng.Intn(20); i++ {
			m.MarkLinkDead(flit.NodeID(rng.Intn(nodes)), topology.Port(1+rng.Intn(4)))
		}
		for i := 0; i < rng.Intn(5); i++ {
			m.MarkRouterDead(flit.NodeID(rng.Intn(nodes)))
		}
		enc := m.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !got.Equal(m) || got.Version() != m.Version() ||
			got.DeadLinks() != m.DeadLinks() || got.DeadRouters() != m.DeadRouters() {
			t.Fatalf("trial %d: round trip changed the map", trial)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("trial %d: re-encoding not canonical", trial)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	m := New(4)
	m.MarkLinkDead(1, topology.East)
	m.MarkRouterDead(2)
	good := m.Encode()
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      {0x00, 0x00, 1, 0, 0, 0},
		"truncated":      good[:len(good)-1],
		"trailing":       append(append([]byte{}, good...), 0),
		"zero nodes":     {magic0, magic1, 0, 0, 0, 0},
		"huge nodes":     {magic0, magic1, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0},
		"node overflow":  {magic0, magic1, 2, 0, 1, 5, 0x1, 0},
		"zero mask":      {magic0, magic1, 2, 0, 1, 0, 0x0, 0},
		"oversized mask": {magic0, magic1, 2, 0, 1, 0, 0x10, 0},
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("good encoding rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(4)
	m.MarkLinkDead(0, topology.East)
	c := m.Clone()
	c.MarkLinkDead(1, topology.West)
	if m.LinkDead(1, topology.West) {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.LinkDead(0, topology.East) {
		t.Fatal("clone lost original faults")
	}
}
