// Package flit defines the unit of flow control in the network: flits,
// the packets they compose, and the control flits (NACKs, deadlock
// probes, activations) used by the fault-tolerance machinery.
//
// Each flit carries a 64-bit content word. For header flits the word packs
// the routing-relevant fields (source, destination, packet ID); for body
// and tail flits it carries payload. The word is what the SEC/DED codec in
// package ecc protects and what link fault injection corrupts, so a
// corrupted header genuinely misroutes unless a protection scheme catches
// it — exactly the failure mode the paper analyses (§3).
package flit

import (
	"fmt"

	"ftnoc/internal/ecc"
)

// checkBits computes the SEC/DED check field for a content word; every
// flit is encoded once, at packetization, and re-encoded only when a
// router legitimately rewrites its word.
func checkBits(w uint64) uint8 { return ecc.Encode(w) }

// Type distinguishes the roles a flit can play. Values start at 1 so the
// zero value is invalid and accidental zero flits are caught early.
type Type uint8

// Flit types. Head opens a wormhole, Body carries payload, Tail closes the
// wormhole. Probe, Activation and NACK are the control flits introduced by
// the paper's deadlock-recovery and retransmission schemes; they travel on
// the same wires as data flits (§3.2.2) and are ECC-protected like any
// other flit.
const (
	Head Type = iota + 1
	Body
	Tail
	Probe
	Activation
	NACK
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Head:
		return "H"
	case Body:
		return "D"
	case Tail:
		return "T"
	case Probe:
		return "P"
	case Activation:
		return "A"
	case NACK:
		return "N"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined flit types.
func (t Type) Valid() bool { return t >= Head && t <= NACK }

// NodeID identifies a node (router + processing element) in the network.
type NodeID uint16

// PacketID uniquely identifies a packet for the lifetime of a simulation.
type PacketID uint64

// Flit is the atomic unit transferred across a link in one cycle.
//
// The struct carries both decoded fields (for fast simulation) and the
// 64-bit content word plus its ECC check bits (for fault modelling). The
// decoded fields of a Head flit are always re-derivable from Word via
// DecodeHeader; after link corruption the receiver must decode from the
// (possibly corrected) word, not trust the cached fields.
type Flit struct {
	Type Type
	Src  NodeID
	Dst  NodeID
	PID  PacketID
	// Seq is the flit's index within its packet (0 for the head).
	Seq uint8
	// VC is the virtual-channel identifier the flit travels on for the
	// current link; rewritten hop by hop.
	VC uint8
	// Word is the 64-bit content: packed header for Head flits, payload
	// otherwise.
	Word uint64
	// Check holds the SEC/DED check bits computed over Word.
	Check uint8
	// InjectedAt is the cycle the packet entered the source queue; used
	// for end-to-end latency accounting.
	InjectedAt uint64
	// Hops counts completed link traversals, for energy accounting.
	Hops uint16
}

// String renders a compact human-readable form, used by trace tests.
func (f Flit) String() string {
	return fmt.Sprintf("%s%d(p%d %d->%d vc%d)", f.Type, f.Seq, f.PID, f.Src, f.Dst, f.VC)
}

// IsData reports whether the flit is part of a data packet (head, body or
// tail) as opposed to a control flit.
func (f Flit) IsData() bool {
	return f.Type == Head || f.Type == Body || f.Type == Tail
}

// Header is the routing-relevant information packed into a head flit's
// content word.
type Header struct {
	Src NodeID
	Dst NodeID
	PID PacketID
}

// Header word layout (bits, LSB first):
//
//	[0,16)  destination node
//	[16,32) source node
//	[32,64) low 32 bits of packet ID
//
// The destination occupies the least-significant bits deliberately: a
// random low-order bit flip is the most intuitive misroute when reading
// traces.
const (
	dstShift = 0
	srcShift = 16
	pidShift = 32
)

// EncodeHeader packs h into a 64-bit word.
func EncodeHeader(h Header) uint64 {
	return uint64(h.Dst)<<dstShift | uint64(h.Src)<<srcShift | (uint64(h.PID)&0xffffffff)<<pidShift
}

// DecodeHeader unpacks a 64-bit word into header fields.
func DecodeHeader(w uint64) Header {
	return Header{
		Dst: NodeID(w >> dstShift & 0xffff),
		Src: NodeID(w >> srcShift & 0xffff),
		PID: PacketID(w >> pidShift & 0xffffffff),
	}
}

// Packet describes a message before packetization into flits.
type Packet struct {
	ID         PacketID
	Src, Dst   NodeID
	Size       int // flits per packet, including head and tail
	InjectedAt uint64
}

// Flits expands the packet into its constituent flits. The head flit's
// word is the encoded header; body/tail words carry a deterministic
// payload derived from the packet ID and sequence number so that payload
// corruption is observable in tests.
func (p Packet) Flits() []Flit {
	return p.AppendFlits(make([]Flit, 0, p.Size))
}

// AppendFlits appends the packet's flits to dst and returns the extended
// slice, producing exactly the flits Flits would. It lets steady-state
// injectors reuse a per-VC backing array instead of allocating one slice
// per packet.
func (p Packet) AppendFlits(dst []Flit) []Flit {
	if p.Size < 1 {
		panic("flit: packet size must be >= 1")
	}
	for i := 0; i < p.Size; i++ {
		f := Flit{
			Src:        p.Src,
			Dst:        p.Dst,
			PID:        p.ID,
			Seq:        uint8(i),
			InjectedAt: p.InjectedAt,
		}
		switch {
		case i == 0:
			f.Type = Head
			f.Word = EncodeHeader(Header{Src: p.Src, Dst: p.Dst, PID: p.ID})
		case i == p.Size-1:
			f.Type = Tail
			f.Word = payloadWord(p.ID, uint8(i))
		default:
			f.Type = Body
			f.Word = payloadWord(p.ID, uint8(i))
		}
		f.Check = checkBits(f.Word)
		dst = append(dst, f)
	}
	return dst
}

// payloadWord derives a deterministic, well-mixed payload for flit seq of
// packet pid.
func payloadWord(pid PacketID, seq uint8) uint64 {
	z := uint64(pid)*0x9e3779b97f4a7c15 + uint64(seq)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PayloadWord exposes the deterministic payload generator so tests and
// receivers can verify end-to-end payload integrity.
func PayloadWord(pid PacketID, seq uint8) uint64 { return payloadWord(pid, seq) }
