package flit

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{Src: 0, Dst: 0, PID: 0},
		{Src: 63, Dst: 0, PID: 1},
		{Src: 0xffff, Dst: 0xffff, PID: 0xffffffff},
		{Src: 12, Dst: 51, PID: 299999},
	}
	for _, h := range cases {
		got := DecodeHeader(EncodeHeader(h))
		if got != h {
			t.Errorf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(src, dst uint16, pid uint32) bool {
		h := Header{Src: NodeID(src), Dst: NodeID(dst), PID: PacketID(pid)}
		return DecodeHeader(EncodeHeader(h)) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketFlits(t *testing.T) {
	p := Packet{ID: 7, Src: 3, Dst: 42, Size: 4, InjectedAt: 100}
	fs := p.Flits()
	if len(fs) != 4 {
		t.Fatalf("got %d flits, want 4", len(fs))
	}
	if fs[0].Type != Head || fs[1].Type != Body || fs[2].Type != Body || fs[3].Type != Tail {
		t.Fatalf("flit types = %v %v %v %v, want H D D T", fs[0].Type, fs[1].Type, fs[2].Type, fs[3].Type)
	}
	h := DecodeHeader(fs[0].Word)
	if h.Src != 3 || h.Dst != 42 || h.PID != 7 {
		t.Fatalf("head flit header = %+v", h)
	}
	for i, f := range fs {
		if f.Seq != uint8(i) {
			t.Errorf("flit %d has Seq %d", i, f.Seq)
		}
		if f.InjectedAt != 100 || f.PID != 7 || f.Src != 3 || f.Dst != 42 {
			t.Errorf("flit %d metadata wrong: %+v", i, f)
		}
	}
	for i := 1; i < 4; i++ {
		if fs[i].Word != PayloadWord(7, uint8(i)) {
			t.Errorf("flit %d payload word mismatch", i)
		}
	}
}

func TestSingleFlitPacket(t *testing.T) {
	fs := Packet{ID: 1, Src: 0, Dst: 1, Size: 1}.Flits()
	if len(fs) != 1 || fs[0].Type != Head {
		t.Fatalf("single-flit packet = %v", fs)
	}
}

func TestPacketFlitsPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size packet did not panic")
		}
	}()
	Packet{Size: 0}.Flits()
}

func TestTypeValid(t *testing.T) {
	for _, tt := range []Type{Head, Body, Tail, Probe, Activation, NACK} {
		if !tt.Valid() {
			t.Errorf("%v reported invalid", tt)
		}
	}
	if Type(0).Valid() || Type(200).Valid() {
		t.Error("out-of-range type reported valid")
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{Head: "H", Body: "D", Tail: "T", Probe: "P", Activation: "A", NACK: "N"}
	for tt, s := range want {
		if tt.String() != s {
			t.Errorf("%d.String() = %q, want %q", tt, tt.String(), s)
		}
	}
}

func TestIsData(t *testing.T) {
	data := []Type{Head, Body, Tail}
	ctrl := []Type{Probe, Activation, NACK}
	for _, tt := range data {
		if !(Flit{Type: tt}).IsData() {
			t.Errorf("%v.IsData() = false", tt)
		}
	}
	for _, tt := range ctrl {
		if (Flit{Type: tt}).IsData() {
			t.Errorf("%v.IsData() = true", tt)
		}
	}
}

func TestPayloadWordDeterministic(t *testing.T) {
	if PayloadWord(5, 2) != PayloadWord(5, 2) {
		t.Fatal("PayloadWord not deterministic")
	}
	if PayloadWord(5, 2) == PayloadWord(5, 3) || PayloadWord(5, 2) == PayloadWord(6, 2) {
		t.Fatal("PayloadWord collision on adjacent inputs")
	}
}

func TestFlitString(t *testing.T) {
	f := Flit{Type: Head, Seq: 0, PID: 3, Src: 1, Dst: 2, VC: 1}
	if got := f.String(); got != "H0(p3 1->2 vc1)" {
		t.Fatalf("String() = %q", got)
	}
}

// Every flit leaves packetization with valid SEC/DED check bits.
func TestPacketFlitsAreECCClean(t *testing.T) {
	for _, size := range []int{1, 2, 4, 9} {
		for _, f := range (Packet{ID: 77, Src: 1, Dst: 2, Size: size}).Flits() {
			if got := checkBits(f.Word); got != f.Check {
				t.Fatalf("size %d seq %d: check %#x, want %#x", size, f.Seq, f.Check, got)
			}
		}
	}
}
