// Package visual renders simulation measurements as plain-text graphics:
// per-node heatmaps of the chip floorplan and horizontal bar charts for
// series data. Pure string formatting — no terminal control codes — so
// output is pipe- and log-friendly.
package visual

import (
	"fmt"
	"math"
	"strings"
)

// shades orders glyphs from empty to full for heatmap cells.
var shades = []rune{'.', '░', '▒', '▓', '█'}

// Heatmap renders a W x H grid of values in [0, max] as a shaded
// floorplan, row 0 on top, with a legend. Values are fetched through at;
// max <= 0 auto-scales to the largest value.
func Heatmap(w, h int, max float64, title string, at func(x, y int) float64) string {
	if w < 1 || h < 1 {
		return ""
	}
	if max <= 0 {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				max = math.Max(max, at(x, y))
			}
		}
		if max == 0 {
			max = 1
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (scale: '%c'=0", title, shades[0])
	fmt.Fprintf(&b, " .. '%c'=%.3g)\n", shades[len(shades)-1], max)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := at(x, y)
			idx := 0
			if v > 0 {
				idx = int(math.Ceil(v / max * float64(len(shades)-1)))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			b.WriteRune(shades[idx])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BarChart renders labelled values as horizontal bars scaled to width
// characters.
func BarChart(title string, width int, labels []string, values []float64) string {
	if len(labels) != len(values) || len(values) == 0 || width < 1 {
		return ""
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		max = math.Max(max, v)
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, v := range values {
		n := int(math.Round(v / max * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.4g\n", labelW, labels[i],
			strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}

// Sparkline renders a series as a single line of block glyphs.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}
	max := 0.0
	for _, v := range values {
		max = math.Max(max, v)
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
