package visual

import (
	"strings"
	"testing"
)

func TestHeatmapDimensions(t *testing.T) {
	s := Heatmap(4, 3, 1, "test", func(x, y int) float64 { return float64(x) / 4 })
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title + 3 rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), s)
	}
	for _, row := range lines[1:] {
		if len([]rune(row)) != 8 { // 4 cells, glyph+space each
			t.Fatalf("row %q has wrong width", row)
		}
	}
}

func TestHeatmapExtremes(t *testing.T) {
	s := Heatmap(2, 1, 1, "x", func(x, y int) float64 {
		if x == 0 {
			return 0
		}
		return 1
	})
	row := strings.Split(s, "\n")[1]
	cells := []rune(row)
	if cells[0] != '.' {
		t.Fatalf("zero cell = %q, want '.'", cells[0])
	}
	if cells[2] != '█' {
		t.Fatalf("full cell = %q, want full shade", cells[2])
	}
}

func TestHeatmapAutoScale(t *testing.T) {
	s := Heatmap(2, 1, 0, "x", func(x, y int) float64 { return float64(x) * 5 })
	if !strings.Contains(s, "=5") {
		t.Fatalf("auto-scale legend missing: %s", s)
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if Heatmap(0, 3, 1, "x", nil) != "" {
		t.Fatal("zero-width heatmap not empty")
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("t", 10, []string{"aa", "b"}, []float64{10, 5})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
}

func TestBarChartMismatched(t *testing.T) {
	if BarChart("t", 10, []string{"a"}, []float64{1, 2}) != "" {
		t.Fatal("mismatched inputs not rejected")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	r := []rune(s)
	if len(r) != 3 {
		t.Fatalf("length %d", len(r))
	}
	if r[0] != '▁' || r[2] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input not empty")
	}
	if Sparkline([]float64{0, 0}) == "" {
		t.Fatal("all-zero series should still render")
	}
}
