package visual

import (
	"strings"
	"testing"
)

func TestHeatmapDimensions(t *testing.T) {
	s := Heatmap(4, 3, 1, "test", func(x, y int) float64 { return float64(x) / 4 })
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title + 3 rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), s)
	}
	for _, row := range lines[1:] {
		if len([]rune(row)) != 8 { // 4 cells, glyph+space each
			t.Fatalf("row %q has wrong width", row)
		}
	}
}

func TestHeatmapExtremes(t *testing.T) {
	s := Heatmap(2, 1, 1, "x", func(x, y int) float64 {
		if x == 0 {
			return 0
		}
		return 1
	})
	row := strings.Split(s, "\n")[1]
	cells := []rune(row)
	if cells[0] != '.' {
		t.Fatalf("zero cell = %q, want '.'", cells[0])
	}
	if cells[2] != '█' {
		t.Fatalf("full cell = %q, want full shade", cells[2])
	}
}

func TestHeatmapAutoScale(t *testing.T) {
	s := Heatmap(2, 1, 0, "x", func(x, y int) float64 { return float64(x) * 5 })
	if !strings.Contains(s, "=5") {
		t.Fatalf("auto-scale legend missing: %s", s)
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if Heatmap(0, 3, 1, "x", nil) != "" {
		t.Fatal("zero-width heatmap not empty")
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("t", 10, []string{"aa", "b"}, []float64{10, 5})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
}

func TestBarChartMismatched(t *testing.T) {
	if BarChart("t", 10, []string{"a"}, []float64{1, 2}) != "" {
		t.Fatal("mismatched inputs not rejected")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	r := []rune(s)
	if len(r) != 3 {
		t.Fatalf("length %d", len(r))
	}
	if r[0] != '▁' || r[2] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input not empty")
	}
	if Sparkline([]float64{0, 0}) == "" {
		t.Fatal("all-zero series should still render")
	}
}

// A heatmap whose every cell is zero must render all-empty glyphs and a
// sane legend (auto-scale falls back to 1 instead of dividing by zero).
func TestHeatmapAllZero(t *testing.T) {
	s := Heatmap(3, 2, 0, "z", func(x, y int) float64 { return 0 })
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "=1") {
		t.Fatalf("zero-max legend should fall back to scale 1: %q", lines[0])
	}
	for _, row := range lines[1:] {
		for _, c := range strings.ReplaceAll(row, " ", "") {
			if c != '.' {
				t.Fatalf("all-zero heatmap has non-empty cell %q in %q", c, row)
			}
		}
	}
}

// The degenerate 1x1 grid is still a valid floorplan.
func TestHeatmapOneByOne(t *testing.T) {
	s := Heatmap(1, 1, 1, "solo", func(x, y int) float64 { return 1 })
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if got := []rune(lines[1])[0]; got != '█' {
		t.Fatalf("1x1 full cell = %q, want full shade", got)
	}
	// Both degenerate axes must be rejected, not just width.
	if Heatmap(3, 0, 1, "x", nil) != "" {
		t.Fatal("zero-height heatmap not empty")
	}
	if Heatmap(-1, -1, 1, "x", nil) != "" {
		t.Fatal("negative dimensions not rejected")
	}
}

// A sparkline over an empty-but-allocated slice matches nil, and a
// single-point series renders one glyph.
func TestSparklineEdges(t *testing.T) {
	if Sparkline([]float64{}) != "" {
		t.Fatal("empty slice should render nothing")
	}
	one := Sparkline([]float64{7})
	if len([]rune(one)) != 1 {
		t.Fatalf("single-point sparkline = %q", one)
	}
	if []rune(one)[0] != '█' {
		t.Fatalf("single positive point should be the max glyph, got %q", one)
	}
	// Negative values clamp to the lowest glyph rather than panicking.
	neg := Sparkline([]float64{-5, 10})
	if []rune(neg)[0] != '▁' {
		t.Fatalf("negative value should clamp to lowest glyph, got %q", neg)
	}
}
